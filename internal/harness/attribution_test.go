package harness

import (
	"testing"

	"dagmutex/internal/topology"
)

// TestEveryIndividualEntryCostsAtMostThreeOnStar strengthens the §6.1/6.2
// reproduction: on the star, not only the average but EVERY single entry
// under saturation costs at most D+1 = 3 messages.
func TestEveryIndividualEntryCostsAtMostThreeOnStar(t *testing.T) {
	costs, err := DAGEntryCosts(topology.Star(20), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 200 {
		t.Fatalf("entry count = %d, want 200", len(costs))
	}
	hist := map[int]int{}
	for i, cost := range costs {
		if cost > 3 {
			t.Fatalf("entry %d cost %d messages, bound is 3", i, cost)
		}
		hist[cost]++
	}
	// Sanity on the shape: leaf entries dominate at 3, center entries at
	// 2, re-entries at 0; all observed costs appear.
	if hist[3] == 0 || hist[2] == 0 {
		t.Fatalf("distribution %v lacks expected 2- and 3-message entries", hist)
	}
	total := 0
	for cost, n := range hist {
		total += cost * n
	}
	if mean := float64(total) / 200; mean > 3 {
		t.Fatalf("mean %.2f above the bound", mean)
	}
}

// TestEveryIndividualEntryRespectsDPlusOneOnLine checks the same
// per-entry bound on the worst topology: no entry exceeds D+1 = N.
func TestEveryIndividualEntryRespectsDPlusOneOnLine(t *testing.T) {
	const n = 10
	costs, err := DAGEntryCosts(topology.Line(n), n, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, cost := range costs {
		if cost > n {
			t.Fatalf("entry %d cost %d messages, D+1 bound is %d", i, cost, n)
		}
	}
}
