// Package harness configures and runs the Chapter 6 experiments: it knows
// every algorithm in the repository, builds the scenario each experiment
// needs (adversarial single requests, exact enumerations, heavy-demand
// loops, sweeps), and renders the results as the tables the thesis
// reports.
package harness

import (
	"fmt"

	"dagmutex/internal/carvalho"
	"dagmutex/internal/central"
	"dagmutex/internal/core"
	"dagmutex/internal/lamport"
	"dagmutex/internal/maekawa"
	"dagmutex/internal/mutex"
	"dagmutex/internal/raymond"
	"dagmutex/internal/ricartagrawala"
	"dagmutex/internal/singhal"
	"dagmutex/internal/suzukikasami"
	"dagmutex/internal/topology"
)

// Algorithm describes one protocol to the experiment runner.
type Algorithm struct {
	// Name is the stable identifier used by tables and the CLI.
	Name string
	// Builder constructs nodes.
	Builder mutex.Builder
	// Configure produces a Config for the given logical tree and initial
	// holder. Protocols that ignore topology only use the tree's ID set.
	Configure func(tree *topology.Tree, holder mutex.ID) (mutex.Config, error)
	// TreeBased marks protocols whose message cost depends on the tree.
	TreeBased bool
	// UpperBound returns the paper's worst-case messages-per-entry formula
	// evaluated for n nodes and diameter d.
	UpperBound func(n, d int) float64
	// UpperBoundFormula prints the formula, for table headers.
	UpperBoundFormula string
	// SyncDelay returns the paper's synchronization delay for diameter d.
	SyncDelay func(d int) float64
}

func treeConfig(tree *topology.Tree, holder mutex.ID) (mutex.Config, error) {
	if holder == mutex.Nil || int(holder) > tree.N() {
		return mutex.Config{}, fmt.Errorf("%w: holder %d not in tree of %d nodes",
			mutex.ErrBadConfig, holder, tree.N())
	}
	return mutex.Config{
		IDs:    tree.IDs(),
		Holder: holder,
		Parent: tree.ParentsToward(holder),
	}, nil
}

func flatConfig(tree *topology.Tree, holder mutex.ID) (mutex.Config, error) {
	return mutex.Config{IDs: tree.IDs(), Holder: holder}, nil
}

func maekawaConfig(tree *topology.Tree, _ mutex.ID) (mutex.Config, error) {
	q, err := maekawa.GridQuorums(tree.IDs())
	if err != nil {
		return mutex.Config{}, err
	}
	return mutex.Config{IDs: tree.IDs(), Quorums: q}, nil
}

// DAG is the thesis's algorithm; exported separately because most
// experiments single it out.
var DAG = Algorithm{
	Name:              "dag",
	Builder:           core.Builder,
	Configure:         treeConfig,
	TreeBased:         true,
	UpperBound:        func(_, d int) float64 { return float64(d + 1) },
	UpperBoundFormula: "D+1",
	SyncDelay:         func(int) float64 { return 1 },
}

// Centralized is the coordinator scheme §6 compares against.
var Centralized = Algorithm{
	Name:              "central",
	Builder:           central.Builder,
	Configure:         flatConfig,
	UpperBound:        func(int, int) float64 { return 3 },
	UpperBoundFormula: "3",
	SyncDelay:         func(int) float64 { return 2 },
}

// Raymond is the tree-based predecessor (§2.7).
var Raymond = Algorithm{
	Name:              "raymond",
	Builder:           raymond.Builder,
	Configure:         treeConfig,
	TreeBased:         true,
	UpperBound:        func(_, d int) float64 { return float64(2 * d) },
	UpperBoundFormula: "2D",
	SyncDelay:         func(d int) float64 { return float64(d) },
}

// SuzukiKasami is the broadcast token algorithm (§2.4).
var SuzukiKasami = Algorithm{
	Name:              "suzuki-kasami",
	Builder:           suzukikasami.Builder,
	Configure:         flatConfig,
	UpperBound:        func(n, _ int) float64 { return float64(n) },
	UpperBoundFormula: "N",
	SyncDelay:         func(int) float64 { return 1 },
}

// Singhal is the heuristically-aided token algorithm (§2.5).
var Singhal = Algorithm{
	Name:              "singhal",
	Builder:           singhal.Builder,
	Configure:         flatConfig,
	UpperBound:        func(n, _ int) float64 { return float64(n) },
	UpperBoundFormula: "N",
	SyncDelay:         func(int) float64 { return 1 },
}

// RicartAgrawala is the optimal assertion-based algorithm (§2.2).
var RicartAgrawala = Algorithm{
	Name:              "ricart-agrawala",
	Builder:           ricartagrawala.Builder,
	Configure:         flatConfig,
	UpperBound:        func(n, _ int) float64 { return float64(2 * (n - 1)) },
	UpperBoundFormula: "2(N-1)",
	SyncDelay:         func(int) float64 { return 1 },
}

// CarvalhoRoucairol retains permissions between entries (§2.3).
var CarvalhoRoucairol = Algorithm{
	Name:              "carvalho-roucairol",
	Builder:           carvalho.Builder,
	Configure:         flatConfig,
	UpperBound:        func(n, _ int) float64 { return float64(2 * (n - 1)) },
	UpperBoundFormula: "0..2(N-1)",
	SyncDelay:         func(int) float64 { return 1 },
}

// Lamport is the replicated-queue algorithm (§2.1).
var Lamport = Algorithm{
	Name:              "lamport",
	Builder:           lamport.Builder,
	Configure:         flatConfig,
	UpperBound:        func(n, _ int) float64 { return float64(3 * (n - 1)) },
	UpperBoundFormula: "3(N-1)",
	SyncDelay:         func(int) float64 { return 1 },
}

// Maekawa is the √N quorum algorithm with Sanders' fix (§2.6).
var Maekawa = Algorithm{
	Name:      "maekawa",
	Builder:   maekawa.Builder,
	Configure: maekawaConfig,
	UpperBound: func(n, _ int) float64 {
		k := 1
		for k*k < n {
			k++
		}
		return float64(7 * (2*k - 1)) // grid quorums have K ≈ 2√N−1
	},
	UpperBoundFormula: "~7*sqrt(N)",
	SyncDelay:         func(int) float64 { return 2 }, // RELEASE then LOCKED through a member
}

// Algorithms lists every protocol, the DAG algorithm first.
func Algorithms() []Algorithm {
	return []Algorithm{
		DAG, Centralized, Raymond, SuzukiKasami, Singhal,
		RicartAgrawala, CarvalhoRoucairol, Lamport, Maekawa,
	}
}

// ByName returns the algorithm with the given name.
func ByName(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.Name == name {
			return a, nil
		}
	}
	return Algorithm{}, fmt.Errorf("unknown algorithm %q", name)
}
