package harness

import (
	"fmt"
	"math"
	"math/rand"

	"dagmutex/internal/cluster"
	"dagmutex/internal/metrics"
	"dagmutex/internal/mutex"
	"dagmutex/internal/sim"
	"dagmutex/internal/topology"
	"dagmutex/internal/workload"
)

// newCluster builds a cluster for a on tree with the given holder.
func newCluster(a Algorithm, tree *topology.Tree, holder mutex.ID, opts ...cluster.Option) (*cluster.Cluster, error) {
	cfg, err := a.Configure(tree, holder)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	c, err := cluster.New(a.Builder, cfg, opts...)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return c, nil
}

// SingleRequestCost runs one request from requester (with the token or
// coordinator at holder) from quiescence and returns the total messages.
func SingleRequestCost(a Algorithm, tree *topology.Tree, holder, requester mutex.ID) (int64, error) {
	c, err := newCluster(a, tree, holder)
	if err != nil {
		return 0, err
	}
	c.RequestAt(0, requester)
	if err := c.Run(); err != nil {
		return 0, fmt.Errorf("%s: %w", a.Name, err)
	}
	if c.Entries() != 1 {
		return 0, fmt.Errorf("%s: %d entries, want 1", a.Name, c.Entries())
	}
	return c.Counts().Messages, nil
}

// HeavyDemandCost saturates every node with perNode entries and returns
// the average messages per entry — §6.2's heavy-demand regime.
func HeavyDemandCost(a Algorithm, tree *topology.Tree, holder mutex.ID, perNode int) (float64, error) {
	c, err := newCluster(a, tree, holder, cluster.WithCSTime(sim.Hop/2))
	if err != nil {
		return 0, err
	}
	workload.Closed{Requests: perNode}.Install(c)
	if err := c.Run(); err != nil {
		return 0, fmt.Errorf("%s: %w", a.Name, err)
	}
	return metrics.MessagesPerEntry(c.Counts(), c.Entries()), nil
}

// MeasuredSyncDelay constructs §6.3's scenario — a waiter already enqueued
// when the current occupant exits — and returns the delay in hops between
// the occupant's exit and the waiter's entry. holder seeds the token (or
// coordinator role); occupant is the node whose critical section the
// waiter waits out, which for the centralized scheme must differ from the
// coordinator to expose the RELEASE+GRANT double hop.
func MeasuredSyncDelay(a Algorithm, tree *topology.Tree, holder, occupant, waiter mutex.ID) (float64, error) {
	c, err := newCluster(a, tree, holder, cluster.WithCSTime(100*sim.Hop))
	if err != nil {
		return 0, err
	}
	c.RequestAt(0, occupant)
	c.RequestAt(50*sim.Hop, waiter)
	if err := c.Run(); err != nil {
		return 0, fmt.Errorf("%s: %w", a.Name, err)
	}
	ds := metrics.SyncDelays(c.Grants())
	if len(ds) != 1 {
		return 0, fmt.Errorf("%s: %d waiting grants, want 1", a.Name, len(ds))
	}
	return ds[0], nil
}

// UpperBound reproduces §6.1's comparison list: the worst-case messages
// per critical-section entry of every algorithm, measured on adversarial
// scenarios and set against the paper's formula.
func UpperBound(ns []int) (*Table, error) {
	t := &Table{
		ID:      "EXP-6.1-upper",
		Title:   "Worst-case messages per critical-section entry (thesis §6.1)",
		Columns: []string{"algorithm", "N", "scenario", "measured", "paper bound", "formula"},
		Notes: []string{
			"dag/star and central reach the same constant 3; dag/line degrades to N, Raymond to 2D",
			"singhal and maekawa are measured as averages under saturation (their worst cases are load-driven)",
		},
	}
	for _, n := range ns {
		line := topology.Line(n)
		star := topology.Star(n)

		dagLine, err := SingleRequestCost(DAG, line, mutex.ID(n), 1)
		if err != nil {
			return nil, err
		}
		t.AddRow("dag", it(n), "line, ends", i64(dagLine), f1(DAG.UpperBound(n, n-1)), DAG.UpperBoundFormula)

		dagStar, err := worstOverPairs(DAG, star)
		if err != nil {
			return nil, err
		}
		t.AddRow("dag", it(n), "star, worst pair", i64(dagStar), f1(DAG.UpperBound(n, 2)), DAG.UpperBoundFormula)

		cen, err := SingleRequestCost(Centralized, star, 1, 2)
		if err != nil {
			return nil, err
		}
		t.AddRow("central", it(n), "non-coordinator", i64(cen), "3.0", Centralized.UpperBoundFormula)

		rayLine, err := SingleRequestCost(Raymond, line, mutex.ID(n), 1)
		if err != nil {
			return nil, err
		}
		t.AddRow("raymond", it(n), "line, ends", i64(rayLine), f1(Raymond.UpperBound(n, n-1)), Raymond.UpperBoundFormula)

		rayStar, err := worstOverPairs(Raymond, star)
		if err != nil {
			return nil, err
		}
		t.AddRow("raymond", it(n), "star, worst pair", i64(rayStar), f1(Raymond.UpperBound(n, 2)), Raymond.UpperBoundFormula)

		sk, err := SingleRequestCost(SuzukiKasami, star, 1, 2)
		if err != nil {
			return nil, err
		}
		t.AddRow("suzuki-kasami", it(n), "remote request", i64(sk), f1(SuzukiKasami.UpperBound(n, 0)), SuzukiKasami.UpperBoundFormula)

		sing, err := HeavyDemandCost(Singhal, star, 1, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow("singhal", it(n), "saturation avg", f2(sing), f1(Singhal.UpperBound(n, 0)), Singhal.UpperBoundFormula)

		ra, err := SingleRequestCost(RicartAgrawala, star, 1, 2)
		if err != nil {
			return nil, err
		}
		t.AddRow("ricart-agrawala", it(n), "any request", i64(ra), f1(RicartAgrawala.UpperBound(n, 0)), RicartAgrawala.UpperBoundFormula)

		cr, err := SingleRequestCost(CarvalhoRoucairol, star, 1, mutex.ID(n))
		if err != nil {
			return nil, err
		}
		t.AddRow("carvalho-roucairol", it(n), "cold start, max id", i64(cr), f1(CarvalhoRoucairol.UpperBound(n, 0)), CarvalhoRoucairol.UpperBoundFormula)

		lam, err := SingleRequestCost(Lamport, star, 1, 2)
		if err != nil {
			return nil, err
		}
		t.AddRow("lamport", it(n), "any request", i64(lam), f1(Lamport.UpperBound(n, 0)), Lamport.UpperBoundFormula)

		mae, err := HeavyDemandCost(Maekawa, star, 1, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow("maekawa", it(n), "saturation avg", f2(mae), f1(Maekawa.UpperBound(n, 0)), Maekawa.UpperBoundFormula)
	}
	return t, nil
}

// worstOverPairs measures the maximum single-request cost over every
// (holder, requester) pair of the tree.
func worstOverPairs(a Algorithm, tree *topology.Tree) (int64, error) {
	var worst int64
	for _, h := range tree.IDs() {
		for _, r := range tree.IDs() {
			cost, err := SingleRequestCost(a, tree, h, r)
			if err != nil {
				return 0, err
			}
			if cost > worst {
				worst = cost
			}
		}
	}
	return worst, nil
}

// meanOverPairs measures the mean single-request cost over every (holder,
// requester) pair — the exact enumeration behind §6.2's average bound.
func meanOverPairs(a Algorithm, tree *topology.Tree) (float64, error) {
	var total int64
	n := tree.N()
	for _, h := range tree.IDs() {
		for _, r := range tree.IDs() {
			cost, err := SingleRequestCost(a, tree, h, r)
			if err != nil {
				return 0, err
			}
			total += cost
		}
	}
	return float64(total) / float64(n*n), nil
}

// AverageBound reproduces §6.2: the exact average messages per entry on
// the best (star) topology, against the closed forms 3 − 5/N + 2/N² for
// the DAG algorithm and 3 − 3/N for the centralized scheme.
func AverageBound(ns []int) (*Table, error) {
	t := &Table{
		ID:      "EXP-6.2-avg",
		Title:   "Average messages per entry on the star topology (thesis §6.2)",
		Columns: []string{"N", "dag measured", "dag 3-5/N+2/N^2", "central measured", "central 3-3/N"},
		Notes: []string{
			"dag averages over every (token position, requester) pair; central over every requester",
			"both approach 3 as N grows, as the thesis concludes",
		},
	}
	for _, n := range ns {
		star := topology.Star(n)
		dagMean, err := meanOverPairs(DAG, star)
		if err != nil {
			return nil, err
		}
		fn := float64(n)
		dagFormula := 3 - 5/fn + 2/(fn*fn)

		var cenTotal int64
		for _, r := range star.IDs() {
			cost, err := SingleRequestCost(Centralized, star, 1, r)
			if err != nil {
				return nil, err
			}
			cenTotal += cost
		}
		cenMean := float64(cenTotal) / fn
		cenFormula := 3 - 3/fn

		t.AddRow(it(n), fmt.Sprintf("%.4f", dagMean), fmt.Sprintf("%.4f", dagFormula),
			fmt.Sprintf("%.4f", cenMean), fmt.Sprintf("%.4f", cenFormula))

		if math.Abs(dagMean-dagFormula) > 1e-9 {
			return nil, fmt.Errorf("dag average %.6f deviates from formula %.6f at N=%d", dagMean, dagFormula, n)
		}
		if math.Abs(cenMean-cenFormula) > 1e-9 {
			return nil, fmt.Errorf("central average %.6f deviates from formula %.6f at N=%d", cenMean, cenFormula, n)
		}
	}
	return t, nil
}

// TokenPlacement reproduces the two intermediate averages inside §6.2's
// derivation: with the token held by a leaf of the star, an entry costs
// (3(N−2) + 2 + 0)/N = 3 − 4/N messages on average over requesters; with
// the token at the center, ((N−1)·2 + 0)/N = 2 − 2/N. The overall
// average of AverageBound is the mix of these two.
func TokenPlacement(ns []int) (*Table, error) {
	t := &Table{
		ID:      "EXP-6.2-placement",
		Title:   "Token placement on the star: average messages per entry (thesis §6.2 derivation)",
		Columns: []string{"N", "token at leaf", "3-4/N", "token at center", "2-2/N"},
		Notes: []string{
			"averages over every requester including the holder itself (which costs 0)",
			"placing the token at the hub saves one message per entry: the hub forwards nothing",
		},
	}
	for _, n := range ns {
		star := topology.Star(n) // center is node 1
		fn := float64(n)

		leafMean, err := meanOverRequesters(DAG, star, 2) // node 2 is a leaf
		if err != nil {
			return nil, err
		}
		leafFormula := 3 - 4/fn

		centerMean, err := meanOverRequesters(DAG, star, 1)
		if err != nil {
			return nil, err
		}
		centerFormula := 2 - 2/fn

		t.AddRow(it(n), fmt.Sprintf("%.4f", leafMean), fmt.Sprintf("%.4f", leafFormula),
			fmt.Sprintf("%.4f", centerMean), fmt.Sprintf("%.4f", centerFormula))

		if math.Abs(leafMean-leafFormula) > 1e-9 {
			return nil, fmt.Errorf("leaf average %.6f deviates from 3-4/N %.6f at N=%d", leafMean, leafFormula, n)
		}
		if math.Abs(centerMean-centerFormula) > 1e-9 {
			return nil, fmt.Errorf("center average %.6f deviates from 2-2/N %.6f at N=%d", centerMean, centerFormula, n)
		}
	}
	return t, nil
}

// meanOverRequesters fixes the holder and averages the single-request
// cost over every possible requester (including the holder, at cost 0).
func meanOverRequesters(a Algorithm, tree *topology.Tree, holder mutex.ID) (float64, error) {
	var total int64
	for _, r := range tree.IDs() {
		cost, err := SingleRequestCost(a, tree, holder, r)
		if err != nil {
			return 0, err
		}
		total += cost
	}
	return float64(total) / float64(tree.N()), nil
}

// HeavyDemand reproduces §6.2's closing claim: under heavy demand both
// the DAG algorithm (on a star) and the centralized scheme cost at most
// about three messages per entry.
func HeavyDemand(ns []int) (*Table, error) {
	t := &Table{
		ID:      "EXP-6.2-heavy",
		Title:   "Messages per entry under heavy demand (thesis §6.2)",
		Columns: []string{"N", "dag/star", "central", "suzuki-kasami", "ricart-agrawala"},
		Notes: []string{
			"dag and central stay at or below 3; broadcast baselines grow linearly with N",
		},
	}
	for _, n := range ns {
		star := topology.Star(n)
		row := []string{it(n)}
		for _, a := range []Algorithm{DAG, Centralized, SuzukiKasami, RicartAgrawala} {
			v, err := HeavyDemandCost(a, star, 1, 10)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(v))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// SyncDelay reproduces §6.3: the number of sequential message hops between
// one node leaving its critical section and the next (already waiting)
// node entering.
func SyncDelay() (*Table, error) {
	t := &Table{
		ID:      "EXP-6.3-delay",
		Title:   "Synchronization delay in message hops (thesis §6.3)",
		Columns: []string{"algorithm", "topology", "measured", "paper"},
		Notes: []string{
			"dag achieves the minimum of 1 on every topology; Raymond pays the diameter; central pays 2",
		},
	}
	type scenario struct {
		algo     Algorithm
		tree     *topology.Tree
		label    string
		holder   mutex.ID
		occupant mutex.ID
		waiter   mutex.ID
		paper    float64
	}
	line5 := topology.Line(5)
	star9 := topology.Star(9)
	scenarios := []scenario{
		{DAG, star9, "star-9", 2, 2, 3, 1},
		{DAG, line5, "line-5 ends", 5, 5, 1, 1},
		{Raymond, star9, "star-9", 2, 2, 3, 2}, // D = 2 on a star
		{Raymond, line5, "line-5 ends", 5, 5, 1, 4},
		{Centralized, star9, "star-9", 1, 2, 3, 2}, // RELEASE to coord + GRANT out
		{SuzukiKasami, star9, "n-9", 1, 1, 3, 1},
		{Singhal, star9, "n-9", 1, 1, 3, 1},
		{RicartAgrawala, star9, "n-9", 1, 1, 3, 1},
		{CarvalhoRoucairol, star9, "n-9", 1, 1, 3, 1},
		{Lamport, star9, "n-9", 1, 1, 3, 1},
		{Maekawa, star9, "n-9", 1, 1, 3, 2},
	}
	for _, s := range scenarios {
		d, err := MeasuredSyncDelay(s.algo, s.tree, s.holder, s.occupant, s.waiter)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.algo.Name, s.label, f1(d), f1(s.paper))
	}
	return t, nil
}

// Storage reproduces §6.4: the per-node control state and the largest
// message each algorithm ships, measured at saturation.
func Storage(n int) (*Table, error) {
	t := &Table{
		ID:    "EXP-6.4-storage",
		Title: fmt.Sprintf("Storage overhead at N=%d under heavy demand (thesis §6.4)", n),
		Columns: []string{"algorithm", "scalars", "array entries", "queue entries",
			"bytes/node", "largest msg (B)"},
		Notes: []string{
			"dag: five scalars (the thesis's three + fencing generation + recovery epoch), 12-byte REQUEST and PRIVILEGE, plus one membership entry per member — the failure extension's only O(N) cost, load-independent",
			"array/queue entries are the per-node maxima observed at any grant or release",
		},
	}
	star := topology.Star(n)
	for _, a := range Algorithms() {
		c, err := newCluster(a, star, 1, cluster.WithCSTime(sim.Hop/2))
		if err != nil {
			return nil, err
		}
		workload.Closed{Requests: 8}.Install(c)
		if err := c.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		r := metrics.StorageFrom(c.MaxStorage())
		largest := 0
		for _, sz := range c.Counts().MaxSizeByKind {
			if sz > largest {
				largest = sz
			}
		}
		t.AddRow(a.Name, it(r.PerNodeMax.Scalars), it(r.PerNodeMax.ArrayEntries),
			it(r.PerNodeMax.QueueEntries), it(r.PerNodeMax.Bytes), it(largest))
	}
	return t, nil
}

// TopologySweep reproduces the Figure 1/8 discussion: how the logical
// shape drives cost for the two tree-based algorithms, showing the star
// ("centralized topology") beating Raymond's radiating star.
func TopologySweep(n int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "FIG-1/8-topo",
		Title:   fmt.Sprintf("Tree-shape sweep at N=%d: mean/worst messages per entry", n),
		Columns: []string{"topology", "D", "dag mean", "dag worst", "raymond mean", "raymond worst"},
		Notes: []string{
			"mean is the exact average over all (token, requester) pairs; worst is the max",
			"the star minimizes both columns for the dag algorithm, as §6 argues",
		},
	}
	shapes := []*topology.Tree{
		topology.Star(n),
		radiatingStarOf(n),
		topology.KAry(n, 2),
		topology.Random(n, rand.New(rand.NewSource(seed))),
		topology.Line(n),
	}
	for _, tree := range shapes {
		if tree == nil {
			continue
		}
		dagMean, err := meanOverPairs(DAG, tree)
		if err != nil {
			return nil, err
		}
		dagWorst, err := worstOverPairs(DAG, tree)
		if err != nil {
			return nil, err
		}
		rayMean, err := meanOverPairs(Raymond, tree)
		if err != nil {
			return nil, err
		}
		rayWorst, err := worstOverPairs(Raymond, tree)
		if err != nil {
			return nil, err
		}
		t.AddRow(tree.Name(), it(tree.Diameter()), f2(dagMean), i64(dagWorst), f2(rayMean), i64(rayWorst))
	}
	return t, nil
}

// radiatingStarOf builds a radiating star close to n nodes (exact when
// n-1 has a factorization arms×len with len ≥ 2); nil when impossible.
func radiatingStarOf(n int) *topology.Tree {
	rest := n - 1
	for armLen := 2; armLen <= rest; armLen++ {
		if rest%armLen == 0 {
			return topology.RadiatingStar(rest/armLen, armLen)
		}
	}
	return nil
}

// LoadSweep is the EXT-load ablation: messages per entry as demand rises
// (think time falls), contrasting constant-cost schemes with broadcast
// schemes.
func LoadSweep(n int, thinks []sim.Time, seed int64) (*Table, error) {
	t := &Table{
		ID:      "EXT-load",
		Title:   fmt.Sprintf("Load sweep at N=%d: messages per entry vs mean think time (hops)", n),
		Columns: []string{"think (hops)", "dag/star", "central", "suzuki-kasami", "ricart-agrawala", "maekawa"},
		Notes: []string{
			"think time 0 is §6.2's heavy demand; large think time approximates isolated requests",
		},
	}
	star := topology.Star(n)
	for _, think := range thinks {
		row := []string{f1(float64(think) / float64(sim.Hop))}
		for _, a := range []Algorithm{DAG, Centralized, SuzukiKasami, RicartAgrawala, Maekawa} {
			c, err := newCluster(a, star, 1, cluster.WithCSTime(sim.Hop/2), cluster.WithSeed(seed))
			if err != nil {
				return nil, err
			}
			workload.Closed{
				Requests: 8,
				Think:    workload.Exponential(think),
				Rng:      rand.New(rand.NewSource(seed)),
			}.Install(c)
			if err := c.Run(); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			row = append(row, f2(metrics.MessagesPerEntry(c.Counts(), c.Entries())))
		}
		t.AddRow(row...)
	}
	return t, nil
}
