package conformance

import (
	"testing"

	"dagmutex/internal/central"
	"dagmutex/internal/mutex"
)

func TestSizesDefault(t *testing.T) {
	f := Factory{}
	got := f.sizes()
	want := []int{2, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("sizes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes() = %v, want %v", got, want)
		}
	}
}

func TestSizesOverride(t *testing.T) {
	f := Factory{Sizes: []int{4, 7}}
	got := f.sizes()
	if len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Fatalf("sizes() = %v, want [4 7]", got)
	}
}

func TestLargest(t *testing.T) {
	if got := (Factory{}).largest(); got != 9 {
		t.Fatalf("default largest() = %d, want 9", got)
	}
	if got := (Factory{Sizes: []int{3, 12, 5}}).largest(); got != 12 {
		t.Fatalf("largest() = %d, want 12", got)
	}
}

func TestBypassBound(t *testing.T) {
	if got := (Factory{}).bypassBound(5); got != 15 {
		t.Fatalf("default bypassBound(5) = %d, want 15 (3N)", got)
	}
	if got := (Factory{BypassBound: 7}).bypassBound(2); got != 14 {
		t.Fatalf("bypassBound(2) with mult 7 = %d, want 14", got)
	}
}

// TestBatteryPassesReferenceProtocol runs the full battery in-package
// against the centralized coordinator, the simplest correct protocol, so
// every scenario's own plumbing (workload install, grant accounting,
// bypass checking) is exercised by this package's tests.
func TestBatteryPassesReferenceProtocol(t *testing.T) {
	Run(t, Factory{
		Name:    "central-reference",
		Builder: central.Builder,
		Config: func(n int, holder mutex.ID) mutex.Config {
			ids := make([]mutex.ID, n)
			for i := range ids {
				ids[i] = mutex.ID(i + 1)
			}
			return mutex.Config{IDs: ids, Holder: holder}
		},
		Sizes: []int{2, 5},
	})
}
