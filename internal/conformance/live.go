package conformance

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dagmutex/internal/lockservice"
	"dagmutex/internal/mutex"
	"dagmutex/internal/runtime"
	"dagmutex/internal/transport"
)

// LiveCluster is the surface the live battery drives: the blocking
// runtime sessions plus the cluster's error and shutdown. Both link
// layers — transport.Local and transport.TCPCluster — satisfy it
// directly, because both run nodes over the one shared actor runtime.
type LiveCluster interface {
	Session(id mutex.ID) *runtime.Session
	Err() error
	Close()
}

// LockMember is one member-node client of a lock service under test —
// the surface the lease/fencing battery drives.
type LockMember interface {
	Acquire(ctx context.Context, resource string) (lockservice.Hold, error)
	Release(resource string) error
}

// Substrate describes one link layer to the live battery.
type Substrate struct {
	// Name labels subtests ("local", "tcp").
	Name string
	// New starts a live cluster for the given builder and configuration.
	New func(b mutex.Builder, cfg mutex.Config) (LiveCluster, error)
	// NewLockCluster starts a lock service with `members` member nodes
	// over this substrate and returns one client per member (index m acts
	// as member m+1) plus a teardown. cfg.Nodes and cfg.Transport are
	// overridden by the substrate.
	NewLockCluster func(cfg lockservice.Config, members int) (clients []LockMember, close func(), err error)
}

// Substrates returns the standard link layers every protocol runs
// identically over: in-process mailboxes and loopback TCP framed by
// codec. The battery's point is that the same table drives both — the
// runtime is shared, only the Link differs.
func Substrates(codec transport.Codec) []Substrate {
	return []Substrate{
		{
			Name: "local",
			New: func(b mutex.Builder, cfg mutex.Config) (LiveCluster, error) {
				return transport.NewLocal(b, cfg)
			},
			NewLockCluster: func(cfg lockservice.Config, members int) ([]LockMember, func(), error) {
				cfg.Nodes = members
				cfg.Transport = lockservice.LocalTransport{}
				svc, err := lockservice.New(cfg)
				if err != nil {
					return nil, nil, err
				}
				clients := make([]LockMember, members)
				for m := 0; m < members; m++ {
					c, err := svc.On(mutex.ID(m + 1))
					if err != nil {
						svc.Close()
						return nil, nil, err
					}
					clients[m] = c
				}
				return clients, svc.Close, nil
			},
		},
		{
			Name: "tcp",
			New: func(b mutex.Builder, cfg mutex.Config) (LiveCluster, error) {
				return transport.NewTCPCluster(b, cfg, codec)
			},
			NewLockCluster: func(cfg lockservice.Config, members int) ([]LockMember, func(), error) {
				services, err := lockservice.NewTCPCluster(cfg, members)
				if err != nil {
					return nil, nil, err
				}
				closeAll := func() {
					for _, svc := range services {
						svc.Close()
					}
				}
				clients := make([]LockMember, members)
				for m, svc := range services {
					c, err := svc.On(mutex.ID(m + 1))
					if err != nil {
						closeAll()
						return nil, nil, err
					}
					clients[m] = c
				}
				return clients, closeAll, nil
			},
		},
	}
}

// RunLive executes the live battery for protocol f over every substrate:
// real goroutines, real (or in-process) links, identical subtests. It
// complements Run, which drives the same protocols deterministically in
// the simulator. Beyond mutual exclusion and recovery, the battery
// checks the hardening layers end to end on both links: fencing tokens
// strictly monotonic under contention, and lease expiry with
// ErrLeaseExpired surfaced to the late releaser.
func RunLive(t *testing.T, f Factory, subs []Substrate) {
	t.Helper()
	for _, sub := range subs {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			t.Run("MutualExclusion", func(t *testing.T) { liveMutualExclusion(t, f, sub) })
			t.Run("SequentialEntries", func(t *testing.T) { liveSequentialEntries(t, f, sub) })
			t.Run("TimedOutAcquireRecovery", func(t *testing.T) { liveTimedOutRecovery(t, f, sub) })
			t.Run("FencingMonotonic", func(t *testing.T) { liveFencingMonotonic(t, f, sub) })
			t.Run("PlannedReorientFencing", func(t *testing.T) { livePlannedReorientFencing(t, f, sub) })
			if sub.NewLockCluster != nil {
				t.Run("LeaseExpiry", func(t *testing.T) { liveLeaseExpiry(t, sub) })
			}
		})
	}
}

func (f Factory) liveCluster(t *testing.T, sub Substrate, n int, holder mutex.ID) (LiveCluster, mutex.Config) {
	t.Helper()
	cfg := f.Config(n, holder)
	c, err := sub.New(f.Builder, cfg)
	if err != nil {
		t.Fatalf("start %s cluster (n=%d): %v", sub.Name, n, err)
	}
	t.Cleanup(c.Close)
	return c, cfg
}

// liveMutualExclusion hammers the cluster from every node concurrently;
// an unsynchronized counter guarded only by the protocol is the witness.
func liveMutualExclusion(t *testing.T, f Factory, sub Substrate) {
	const n, perNode = 5, 10
	c, cfg := f.liveCluster(t, sub, n, 1)
	var inCS, total atomic.Int64
	var wg sync.WaitGroup
	for _, id := range cfg.IDs {
		h := c.Session(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i := 0; i < perNode; i++ {
				if _, err := h.Acquire(ctx); err != nil {
					t.Errorf("node %d acquire: %v", h.ID(), err)
					return
				}
				if got := inCS.Add(1); got != 1 {
					t.Errorf("mutual exclusion violated: %d nodes in CS", got)
				}
				total.Add(1)
				inCS.Add(-1)
				if err := h.Release(); err != nil {
					t.Errorf("node %d release: %v", h.ID(), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != int64(n*perNode) {
		t.Fatalf("entries = %d, want %d", got, n*perNode)
	}
}

// liveFencingMonotonic is the fencing-token acceptance check, run under
// real contention: every node hammers the cluster, and inside each
// critical section — where the protocol itself serializes execution —
// the grant's generation must strictly exceed the previous entry's. The
// same assertion runs over both substrates, so the generation survives
// the wire codec round-trip, not just the in-process path.
func liveFencingMonotonic(t *testing.T, f Factory, sub Substrate) {
	const n, perNode = 4, 8
	c, cfg := f.liveCluster(t, sub, n, 1)
	var lastGen atomic.Uint64 // written only inside the CS, so unraced
	var fenced atomic.Int64
	var wg sync.WaitGroup
	for _, id := range cfg.IDs {
		h := c.Session(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i := 0; i < perNode; i++ {
				g, err := h.Acquire(ctx)
				if err != nil {
					t.Errorf("node %d acquire: %v", h.ID(), err)
					return
				}
				if g.Generation > 0 {
					fenced.Add(1)
					if prev := lastGen.Load(); g.Generation <= prev {
						t.Errorf("node %d granted generation %d, not above previous %d",
							h.ID(), g.Generation, prev)
					}
					lastGen.Store(g.Generation)
				}
				if g.At.IsZero() {
					t.Errorf("node %d grant has zero timestamp", h.ID())
				}
				if err := h.Release(); err != nil {
					t.Errorf("node %d release: %v", h.ID(), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	// The assertion is vacuous for protocols that provide no fencing;
	// for those that do, every grant must have carried a token.
	if got := fenced.Load(); got != 0 && got != int64(n*perNode) {
		t.Fatalf("only %d of %d grants carried a fencing token", got, n*perNode)
	}
}

// livePlannedReorientFencing is the adaptive-topology acceptance check:
// under real contention, holders plan reorients from inside their
// critical sections (toward a rotating "hot" node, so the reshape
// target keeps moving), and the fencing generation must stay strictly
// monotonic across every planned epoch — the reshape reuses the
// recovery rounds but must never regenerate the token. Refused plans
// (mid-reshape, quorum loss, or a protocol without the capability) are
// fine; the subtest skips only if no reorient was ever planned, so a
// capable protocol cannot pass vacuously. Run over both substrates, the
// REORIENT frames cross the wire codec on tcp.
func livePlannedReorientFencing(t *testing.T, f Factory, sub Substrate) {
	const n, perNode = 4, 8
	c, cfg := f.liveCluster(t, sub, n, 1)
	var lastGen atomic.Uint64 // written only inside the CS, so unraced
	var planned atomic.Int64
	var wg sync.WaitGroup
	for i, id := range cfg.IDs {
		h := c.Session(id)
		hot := cfg.IDs[(i+1)%len(cfg.IDs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for j := 0; j < perNode; j++ {
				g, err := h.Acquire(ctx)
				if err != nil {
					t.Errorf("node %d acquire: %v", h.ID(), err)
					return
				}
				if g.Generation > 0 {
					if prev := lastGen.Load(); g.Generation <= prev {
						t.Errorf("node %d granted generation %d, not above previous %d",
							h.ID(), g.Generation, prev)
					}
					lastGen.Store(g.Generation)
				}
				ok, err := h.PlanReorient(hot)
				if err != nil {
					t.Errorf("node %d plan reorient toward %d: %v", h.ID(), hot, err)
					return
				}
				if ok {
					planned.Add(1)
				}
				if err := h.Release(); err != nil {
					t.Errorf("node %d release: %v", h.ID(), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if planned.Load() == 0 {
		t.Skip("no reorient was ever planned (protocol lacks the capability)")
	}
}

// liveSequentialEntries has every node enter once with no contention.
func liveSequentialEntries(t *testing.T, f Factory, sub Substrate) {
	c, cfg := f.liveCluster(t, sub, 4, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range cfg.IDs {
		h := c.Session(id)
		if _, err := h.Acquire(ctx); err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		if err := h.Release(); err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// liveTimedOutRecovery exercises the documented recovery path end to
// end: an Acquire that times out while another node holds the section
// leaves its request outstanding (the paper's model has no
// cancellation); the grant still arrives once the holder exits, the
// caller drains it via Session.Granted, releases, and the slot works
// again.
func liveTimedOutRecovery(t *testing.T, f Factory, sub Substrate) {
	c, _ := f.liveCluster(t, sub, 3, 1)
	holder, waiter := c.Session(1), c.Session(3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	first, err := holder.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer shortCancel()
	_, err = waiter.Acquire(shortCtx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("acquire under held token = %v, want deadline exceeded", err)
	}
	if err := holder.Release(); err != nil {
		t.Fatal(err)
	}
	var late runtime.Grant
	select {
	case late = <-waiter.Granted():
	case <-ctx.Done():
		t.Fatal("late grant never arrived on Granted()")
	}
	if late.Generation > 0 && late.Generation <= first.Generation {
		t.Fatalf("late grant generation %d not above holder's %d", late.Generation, first.Generation)
	}
	if err := waiter.Release(); err != nil {
		t.Fatal(err)
	}
	// The slot is fully recovered: a fresh acquire/release cycle works.
	if _, err := waiter.Acquire(ctx); err != nil {
		t.Fatalf("reacquire after recovery: %v", err)
	}
	if err := waiter.Release(); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// liveLeaseExpiry drives the lock service's lease machinery identically
// over each substrate: a member overholds a resource past its lease; the
// shard sweeper force-releases it, a second member then acquires the
// same resource under a strictly higher fencing token, the late Release
// observes ErrLeaseExpired, and releases of never-held resources get
// ErrNotHeld.
func liveLeaseExpiry(t *testing.T, sub Substrate) {
	const resource = "leased"
	clients, closeAll, err := sub.NewLockCluster(lockservice.Config{
		Shards:        2,
		Lease:         150 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	}, 2)
	if err != nil {
		t.Fatalf("start %s lock cluster: %v", sub.Name, err)
	}
	defer closeAll()
	a, b := clients[0], clients[1]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	hold, err := a.Acquire(ctx, resource)
	if err != nil {
		t.Fatal(err)
	}
	if hold.Fence == 0 {
		t.Fatal("hold carries no fencing token")
	}
	if hold.Expires.IsZero() {
		t.Fatal("hold carries no lease deadline")
	}

	// Member A goes silent past its lease; member B's acquire of the same
	// resource must succeed once the sweeper reclaims the hold — without
	// any Release from A.
	second, err := b.Acquire(ctx, resource)
	if err != nil {
		t.Fatalf("acquire after lease expiry: %v", err)
	}
	if second.Fence <= hold.Fence {
		t.Fatalf("post-expiry fence %d not above expired hold's %d", second.Fence, hold.Fence)
	}

	// A's late release is told its lease ran out, not a generic error.
	if err := a.Release(resource); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("late release = %v, want ErrLeaseExpired", err)
	}
	if err := b.Release(resource); err != nil {
		t.Fatal(err)
	}
	// And a release of something never held is distinct.
	if err := b.Release(resource); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release = %v, want ErrNotHeld", err)
	}
	if err := b.Release("never-acquired"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("release of never-held resource = %v, want ErrNotHeld", err)
	}
}

// Re-exported lockservice sentinels, so protocol test packages can
// assert on the lease battery's errors without importing lockservice.
var (
	ErrLeaseExpired = lockservice.ErrLeaseExpired
	ErrNotHeld      = lockservice.ErrNotHeld
)
