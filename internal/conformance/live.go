package conformance

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dagmutex/internal/mutex"
	"dagmutex/internal/runtime"
	"dagmutex/internal/transport"
)

// LiveCluster is the surface the live battery drives: the blocking
// runtime handles plus the cluster's error and shutdown. Both link
// layers — transport.Local and transport.TCPCluster — satisfy it
// directly, because both run nodes over the one shared actor runtime.
type LiveCluster interface {
	Handle(id mutex.ID) *runtime.Handle
	Err() error
	Close()
}

// Substrate describes one link layer to the live battery.
type Substrate struct {
	// Name labels subtests ("local", "tcp").
	Name string
	// New starts a live cluster for the given builder and configuration.
	New func(b mutex.Builder, cfg mutex.Config) (LiveCluster, error)
}

// Substrates returns the standard link layers every protocol runs
// identically over: in-process mailboxes and loopback TCP framed by
// codec. The battery's point is that the same table drives both — the
// runtime is shared, only the Link differs.
func Substrates(codec transport.Codec) []Substrate {
	return []Substrate{
		{
			Name: "local",
			New: func(b mutex.Builder, cfg mutex.Config) (LiveCluster, error) {
				return transport.NewLocal(b, cfg)
			},
		},
		{
			Name: "tcp",
			New: func(b mutex.Builder, cfg mutex.Config) (LiveCluster, error) {
				return transport.NewTCPCluster(b, cfg, codec)
			},
		},
	}
}

// RunLive executes the live battery for protocol f over every substrate:
// real goroutines, real (or in-process) links, identical subtests. It
// complements Run, which drives the same protocols deterministically in
// the simulator.
func RunLive(t *testing.T, f Factory, subs []Substrate) {
	t.Helper()
	for _, sub := range subs {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			t.Run("MutualExclusion", func(t *testing.T) { liveMutualExclusion(t, f, sub) })
			t.Run("SequentialEntries", func(t *testing.T) { liveSequentialEntries(t, f, sub) })
			t.Run("TimedOutAcquireRecovery", func(t *testing.T) { liveTimedOutRecovery(t, f, sub) })
		})
	}
}

func (f Factory) liveCluster(t *testing.T, sub Substrate, n int, holder mutex.ID) (LiveCluster, mutex.Config) {
	t.Helper()
	cfg := f.Config(n, holder)
	c, err := sub.New(f.Builder, cfg)
	if err != nil {
		t.Fatalf("start %s cluster (n=%d): %v", sub.Name, n, err)
	}
	t.Cleanup(c.Close)
	return c, cfg
}

// liveMutualExclusion hammers the cluster from every node concurrently;
// an unsynchronized counter guarded only by the protocol is the witness.
func liveMutualExclusion(t *testing.T, f Factory, sub Substrate) {
	const n, perNode = 5, 10
	c, cfg := f.liveCluster(t, sub, n, 1)
	var inCS, total atomic.Int64
	var wg sync.WaitGroup
	for _, id := range cfg.IDs {
		h := c.Handle(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i := 0; i < perNode; i++ {
				if err := h.Acquire(ctx); err != nil {
					t.Errorf("node %d acquire: %v", h.ID(), err)
					return
				}
				if got := inCS.Add(1); got != 1 {
					t.Errorf("mutual exclusion violated: %d nodes in CS", got)
				}
				total.Add(1)
				inCS.Add(-1)
				if err := h.Release(); err != nil {
					t.Errorf("node %d release: %v", h.ID(), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != int64(n*perNode) {
		t.Fatalf("entries = %d, want %d", got, n*perNode)
	}
}

// liveSequentialEntries has every node enter once with no contention.
func liveSequentialEntries(t *testing.T, f Factory, sub Substrate) {
	c, cfg := f.liveCluster(t, sub, 4, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range cfg.IDs {
		h := c.Handle(id)
		if err := h.Acquire(ctx); err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		if err := h.Release(); err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// liveTimedOutRecovery exercises the documented recovery path end to
// end: an Acquire that times out while another node holds the section
// leaves its request outstanding (the paper's model has no
// cancellation); the grant still arrives once the holder exits, the
// caller drains it via Handle.Granted, releases, and the slot works
// again.
func liveTimedOutRecovery(t *testing.T, f Factory, sub Substrate) {
	c, _ := f.liveCluster(t, sub, 3, 1)
	holder, waiter := c.Handle(1), c.Handle(3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := holder.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer shortCancel()
	err := waiter.Acquire(shortCtx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("acquire under held token = %v, want deadline exceeded", err)
	}
	if err := holder.Release(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-waiter.Granted():
	case <-ctx.Done():
		t.Fatal("late grant never arrived on Granted()")
	}
	if err := waiter.Release(); err != nil {
		t.Fatal(err)
	}
	// The slot is fully recovered: a fresh acquire/release cycle works.
	if err := waiter.Acquire(ctx); err != nil {
		t.Fatalf("reacquire after recovery: %v", err)
	}
	if err := waiter.Release(); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}
