package conformance

import "testing"

// TestClientBatteryOverBothAccessPaths runs the member/client split's
// conformance battery: dialed non-member clients must see identical
// semantics whether the members run on in-process mailboxes behind a
// client gateway, over TCP serving clients on their own listeners, or
// behind the gateway tier multiplexing them over every member.
func TestClientBatteryOverBothAccessPaths(t *testing.T) {
	RunClients(t, ClientSubstrates())
}
