package conformance

import "testing"

// TestClientBatteryOverBothAccessPaths runs the member/client split's
// conformance battery: dialed non-member clients must see identical
// semantics whether the members run on in-process mailboxes behind a
// client gateway or over TCP serving clients on their own listeners.
func TestClientBatteryOverBothAccessPaths(t *testing.T) {
	RunClients(t, ClientSubstrates())
}
