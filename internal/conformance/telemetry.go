package conformance

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dagmutex/internal/client"
	"dagmutex/internal/lockservice"
	"dagmutex/internal/telemetry"
)

// This file is the telemetry battery: the live trace stream a
// lockservice.Config.TraceObserver delivers must tell the truth over
// every client access path. Two invariants are checked against
// client-side ground truth (the test counts its own successful acquires
// and releases):
//
//   - conservation: every grant the service hands out ends in exactly
//     one lifecycle event — RELEASE, REGRANT, or EXPIRE. At quiescence
//     grants == releases + expired, with cohort regrants counting as
//     releases.
//   - causal order: GRANT fences are strictly monotonic per shard in
//     stream order. The fence is the shard's logical clock; if two
//     grants ever swap in the stream, the trace cannot be trusted to
//     reconstruct who held the lock when.
//
// The observer is shared by every member of the cluster (the config is
// copied to each), so over the TCP and gateway substrates the stream
// interleaves events from several member processes — exactly the
// deployment shape a real aggregation pipeline sees.

// traceCollector accumulates a trace stream from concurrently running
// members. Observers run inside protocol handlers, so the append is the
// only work done under the lock.
type traceCollector struct {
	mu     sync.Mutex
	events []telemetry.TraceEvent
}

func (tc *traceCollector) observe(e telemetry.TraceEvent) {
	tc.mu.Lock()
	tc.events = append(tc.events, e)
	tc.mu.Unlock()
}

func (tc *traceCollector) snapshot() []telemetry.TraceEvent {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make([]telemetry.TraceEvent, len(tc.events))
	copy(out, tc.events)
	return out
}

// RunTelemetry executes the telemetry-consistency battery over every
// substrate.
func RunTelemetry(t *testing.T, subs []ClientSubstrate) {
	t.Helper()
	for _, sub := range subs {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			t.Run("TelemetryConsistency", func(t *testing.T) { telemetryConsistency(t, sub) })
		})
	}
}

// telemetryConsistency drives a contended workload with deliberate
// lease expiries through a substrate and audits the resulting trace
// stream against the client-side ledger.
func telemetryConsistency(t *testing.T, sub ClientSubstrate) {
	const workers, perWorker = 4, 25
	tc := &traceCollector{}
	conns := sub.start(t, lockservice.Config{
		Shards:        2,
		Lease:         250 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
		TraceObserver: tc.observe,
	}, 2, workers+1)
	abandoner := conns[workers]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Two holds are taken and abandoned: the sweeper must reclaim them,
	// and the reclamations must show up as EXPIRE events.
	for _, key := range []string{"expiring-a", "expiring-b"} {
		if _, err := abandoner.Acquire(ctx, key); err != nil {
			t.Fatalf("abandoner acquire %q: %v", key, err)
		}
	}

	// grants and releases are the client-side ledger the stream is
	// audited against. A worker's own hold can expire under scheduling
	// delay (the lease is short so the abandoned holds reclaim fast);
	// such a release reports ErrLeaseExpired and is counted as an
	// expiry, not a release.
	var grants, releases atomic.Int64
	grants.Add(2) // the abandoned holds
	keys := []string{"key-0", "key-1", "key-2", "key-3"}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int, c *client.Conn) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				key := keys[(i+j)%len(keys)]
				h, err := c.Acquire(ctx, key)
				if err != nil {
					t.Errorf("worker %d acquire %q: %v", i, key, err)
					return
				}
				grants.Add(1)
				switch err := c.ReleaseHold(h); {
				case err == nil:
					releases.Add(1)
				case !errors.Is(err, lockservice.ErrLeaseExpired):
					t.Errorf("worker %d release %q: %v", i, key, err)
					return
				}
			}
		}(i, conns[i])
	}
	wg.Wait()

	// Proof of reclamation: acquiring the abandoned keys succeeds only
	// after the sweeper expired them, and each EXPIRE event is emitted
	// before the successor's grant can complete.
	for _, key := range []string{"expiring-a", "expiring-b"} {
		h, err := conns[0].Acquire(ctx, key)
		if err != nil {
			t.Fatalf("acquire after expiry of %q: %v", key, err)
		}
		grants.Add(1)
		if err := conns[0].ReleaseHold(h); err != nil {
			t.Fatalf("release of reclaimed %q: %v", key, err)
		}
		releases.Add(1)
	}

	events := tc.snapshot()
	auditConservation(t, events, grants.Load(), releases.Load())
	auditGrantFences(t, events)
}

// auditConservation checks the lifecycle ledger: RELEASE + REGRANT
// events must equal the client-observed releases, EXPIRE events must
// account for exactly the grants that never released, and every
// lifecycle event must carry its shard stamp and resource name.
func auditConservation(t *testing.T, events []telemetry.TraceEvent, grants, releases int64) {
	t.Helper()
	var rel, exp int64
	for _, e := range events {
		switch e.Kind {
		case telemetry.TraceRelease, telemetry.TraceRegrant, telemetry.TraceExpire:
			if e.Shard < 0 {
				t.Errorf("lifecycle event without shard stamp: %s", e)
			}
			if e.Detail == "" {
				t.Errorf("lifecycle event without resource name: %s", e)
			}
			if e.Kind == telemetry.TraceExpire {
				exp++
			} else {
				rel++
			}
		}
	}
	if rel != releases {
		t.Errorf("stream releases+regrants = %d, client-side releases = %d", rel, releases)
	}
	if want := grants - releases; exp != want {
		t.Errorf("stream expiries = %d, want %d (grants %d - releases %d)", exp, want, grants, releases)
	}
	if exp < 2 {
		t.Errorf("stream expiries = %d, want at least the 2 abandoned holds", exp)
	}
}

// auditGrantFences checks causal order: within each shard, GRANT events
// must appear in the stream with strictly increasing fences — the token
// serializes grants, so any inversion means the trace lies about
// ordering.
func auditGrantFences(t *testing.T, events []telemetry.TraceEvent) {
	t.Helper()
	last := make(map[int32]uint64)
	grants := 0
	for _, e := range events {
		if e.Kind != telemetry.TraceGrant {
			continue
		}
		grants++
		if e.Shard < 0 {
			t.Errorf("grant event without shard stamp: %s", e)
			continue
		}
		if prev, ok := last[e.Shard]; ok && e.Fence <= prev {
			t.Errorf("shard %d grant fence %d not above predecessor's %d", e.Shard, e.Fence, prev)
		}
		last[e.Shard] = e.Fence
	}
	if grants == 0 {
		t.Error("trace stream carries no GRANT events")
	}
	if len(last) < 2 {
		t.Errorf("grants observed on %d shards, want both", len(last))
	}
}
