package conformance

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dagmutex/internal/client"
	"dagmutex/internal/gateway"
	"dagmutex/internal/lockservice"
	"dagmutex/internal/mutex"
	"dagmutex/internal/transport"
)

// This file is the client battery: the conformance checks for the
// member/client split. A dialed client — a process that is NOT a vertex
// of the token DAG — must see exactly the semantics an in-process
// member client sees: blocking acquire with fencing tokens, lease
// expiry with ErrLeaseExpired, ErrNotHeld on bogus releases, context
// cancellation that never leaks a hold, and disconnect cleanup. The
// same battery runs over both member substrates: members on in-process
// mailboxes fronted by a client gateway, and members over TCP serving
// clients on their own listeners.

// ClientSubstrate describes one way dialed clients reach a member.
type ClientSubstrate struct {
	// Name labels subtests ("local-gateway", "tcp").
	Name string
	// Start launches a lock cluster with the given configuration and
	// members member nodes, serving clients through member 1, and returns
	// the address clients dial plus a teardown.
	Start func(cfg lockservice.Config, members int) (addr string, close func(), err error)
}

// ClientSubstrates returns the standard client access paths: a
// standalone gateway fronting an in-process member cluster, a TCP
// member cluster whose own listeners demultiplex client connections,
// and the gateway tier multiplexing dialed clients over every member
// of a TCP cluster.
func ClientSubstrates() []ClientSubstrate {
	return []ClientSubstrate{
		{
			Name: "local-gateway",
			Start: func(cfg lockservice.Config, members int) (string, func(), error) {
				cfg.Nodes = members
				cfg.Transport = lockservice.LocalTransport{}
				svc, err := lockservice.New(cfg)
				if err != nil {
					return "", nil, err
				}
				backend, err := svc.ClientBackend(1)
				if err != nil {
					svc.Close()
					return "", nil, err
				}
				gw, err := transport.NewClientGateway("", backend)
				if err != nil {
					svc.Close()
					return "", nil, err
				}
				return gw.Addr(), func() { gw.Close(); svc.Close() }, nil
			},
		},
		{
			Name: "tcp",
			Start: func(cfg lockservice.Config, members int) (string, func(), error) {
				services, err := lockservice.NewTCPCluster(cfg, members)
				if err != nil {
					return "", nil, err
				}
				closeAll := func() {
					for _, svc := range services {
						svc.Close()
					}
				}
				if err := services[0].ServeClients(1); err != nil {
					closeAll()
					return "", nil, err
				}
				return services[0].Addr(), closeAll, nil
			},
		},
		{
			Name: "gateway",
			Start: func(cfg lockservice.Config, members int) (string, func(), error) {
				services, err := lockservice.NewTCPCluster(cfg, members)
				if err != nil {
					return "", nil, err
				}
				closeAll := func() {
					for _, svc := range services {
						svc.Close()
					}
				}
				addrs := make([]string, members)
				for i, svc := range services {
					if err := svc.ServeClients(mutex.ID(i + 1)); err != nil {
						closeAll()
						return "", nil, err
					}
					addrs[i] = svc.Addr()
				}
				gw, err := gateway.New(gateway.Config{Members: addrs})
				if err != nil {
					closeAll()
					return "", nil, err
				}
				return gw.Addr(), func() { _ = gw.Close(); closeAll() }, nil
			},
		},
	}
}

// RunClients executes the client battery over every substrate.
func RunClients(t *testing.T, subs []ClientSubstrate) {
	t.Helper()
	for _, sub := range subs {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			t.Run("AcquireFenceRelease", func(t *testing.T) { clientAcquireFenceRelease(t, sub) })
			t.Run("TryAcquire", func(t *testing.T) { clientTryAcquire(t, sub) })
			t.Run("NotHeld", func(t *testing.T) { clientNotHeld(t, sub) })
			t.Run("LeaseExpiry", func(t *testing.T) { clientLeaseExpiry(t, sub) })
			t.Run("CancelPropagation", func(t *testing.T) { clientCancelPropagation(t, sub) })
			t.Run("DisconnectCleanup", func(t *testing.T) { clientDisconnectCleanup(t, sub) })
			t.Run("Backpressure", func(t *testing.T) { clientBackpressure(t, sub) })
			t.Run("CoalescedFences", func(t *testing.T) { clientCoalescedFences(t, sub) })
			t.Run("CoalescedCancelIsolation", func(t *testing.T) { clientCoalescedCancelIsolation(t, sub) })
			t.Run("CoalescedDisconnectIsolation", func(t *testing.T) { clientCoalescedDisconnectIsolation(t, sub) })
		})
	}
}

// start launches a cluster and n dialed clients.
func (sub ClientSubstrate) start(t *testing.T, cfg lockservice.Config, members, n int) []*client.Conn {
	t.Helper()
	addr, closeAll, err := sub.Start(cfg, members)
	if err != nil {
		t.Fatalf("start %s client cluster: %v", sub.Name, err)
	}
	t.Cleanup(closeAll)
	conns := make([]*client.Conn, n)
	for i := range conns {
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatalf("dial client %d: %v", i, err)
		}
		t.Cleanup(func() { _ = c.Close() })
		conns[i] = c
	}
	return conns
}

// clientAcquireFenceRelease hammers one resource from several dialed
// clients at once: mutual exclusion is witnessed by an unsynchronized
// counter, and every grant's fence must strictly exceed the previous
// one — over the wire, exactly as in process.
func clientAcquireFenceRelease(t *testing.T, sub ClientSubstrate) {
	const clients, perClient = 4, 6
	conns := sub.start(t, lockservice.Config{Shards: 2}, 2, clients)
	var inCS, total atomic.Int64
	var lastFence atomic.Uint64 // written only inside the CS
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Conn) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for j := 0; j < perClient; j++ {
				h, err := c.Acquire(ctx, "contended")
				if err != nil {
					t.Errorf("client %d acquire: %v", i, err)
					return
				}
				if got := inCS.Add(1); got != 1 {
					t.Errorf("mutual exclusion violated: %d clients in CS", got)
				}
				if h.Fence == 0 {
					t.Errorf("client %d hold carries no fence", i)
				}
				if prev := lastFence.Load(); h.Fence <= prev {
					t.Errorf("client %d fence %d not above previous %d", i, h.Fence, prev)
				}
				lastFence.Store(h.Fence)
				total.Add(1)
				inCS.Add(-1)
				if err := c.ReleaseHold(h); err != nil {
					t.Errorf("client %d release: %v", i, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	if got := total.Load(); got != clients*perClient {
		t.Fatalf("entries = %d, want %d", got, clients*perClient)
	}
}

// clientTryAcquire checks the no-wait path end to end: a held resource
// reports false without queueing, a free one grants immediately.
func clientTryAcquire(t *testing.T, sub ClientSubstrate) {
	conns := sub.start(t, lockservice.Config{Shards: 1}, 2, 2)
	a, b := conns[0], conns[1]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	hold, err := a.Acquire(ctx, "try-me")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := b.TryAcquire("try-me"); err != nil || ok {
		t.Fatalf("try of a held resource = (%v, %v), want (false, nil)", ok, err)
	}
	if err := a.ReleaseHold(hold); err != nil {
		t.Fatal(err)
	}
	h2, ok, err := b.TryAcquire("try-me")
	if err != nil || !ok {
		t.Fatalf("try of a free resource = (%v, %v), want (true, nil)", ok, err)
	}
	if h2.Fence <= hold.Fence {
		t.Fatalf("try fence %d not above previous %d", h2.Fence, hold.Fence)
	}
	if err := b.ReleaseHold(h2); err != nil {
		t.Fatal(err)
	}
}

// clientNotHeld checks that the lifecycle sentinels survive the wire.
func clientNotHeld(t *testing.T, sub ClientSubstrate) {
	conns := sub.start(t, lockservice.Config{Shards: 1}, 2, 1)
	if err := conns[0].Release("never-held"); !errors.Is(err, lockservice.ErrNotHeld) {
		t.Fatalf("release of never-held resource = %v, want ErrNotHeld", err)
	}
}

// clientLeaseExpiry is the lease battery over the wire: a stuck dialed
// client's hold is reclaimed, the next client gets a higher fence, and
// the late release observes ErrLeaseExpired.
func clientLeaseExpiry(t *testing.T, sub ClientSubstrate) {
	conns := sub.start(t, lockservice.Config{
		Shards:        1,
		Lease:         150 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	}, 2, 2)
	a, b := conns[0], conns[1]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	hold, err := a.Acquire(ctx, "leased")
	if err != nil {
		t.Fatal(err)
	}
	if hold.Expires.IsZero() {
		t.Fatal("hold carries no lease deadline")
	}
	// A goes silent past its lease; B's acquire succeeds without any
	// release from A.
	second, err := b.Acquire(ctx, "leased")
	if err != nil {
		t.Fatalf("acquire after lease expiry: %v", err)
	}
	if second.Fence <= hold.Fence {
		t.Fatalf("post-expiry fence %d not above expired hold's %d", second.Fence, hold.Fence)
	}
	if err := a.ReleaseHold(hold); !errors.Is(err, lockservice.ErrLeaseExpired) {
		t.Fatalf("late release = %v, want ErrLeaseExpired", err)
	}
	if err := b.ReleaseHold(second); err != nil {
		t.Fatal(err)
	}
}

// clientCancelPropagation checks that a canceled Acquire propagates into
// the member's queue and leaks nothing: the canceled client can come
// back and acquire normally once the holder releases.
func clientCancelPropagation(t *testing.T, sub ClientSubstrate) {
	conns := sub.start(t, lockservice.Config{Shards: 1}, 2, 2)
	a, b := conns[0], conns[1]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	hold, err := a.Acquire(ctx, "queued")
	if err != nil {
		t.Fatal(err)
	}
	shortCtx, shortCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer shortCancel()
	if _, err := b.Acquire(shortCtx, "queued"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("acquire under held resource = %v, want deadline exceeded", err)
	}
	if err := a.ReleaseHold(hold); err != nil {
		t.Fatal(err)
	}
	// The canceled acquire must not have wedged the member: B acquires
	// and releases cleanly.
	h2, err := b.Acquire(ctx, "queued")
	if err != nil {
		t.Fatalf("reacquire after canceled acquire: %v", err)
	}
	if err := b.ReleaseHold(h2); err != nil {
		t.Fatal(err)
	}
}

// clientDisconnectCleanup checks the crash path: a client that vanishes
// while holding must not park the resource — the member releases the
// holds of a dropped connection.
func clientDisconnectCleanup(t *testing.T, sub ClientSubstrate) {
	conns := sub.start(t, lockservice.Config{Shards: 1}, 2, 2)
	a, b := conns[0], conns[1]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := a.Acquire(ctx, "abandoned"); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Well before any lease could expire (default 30s), the hold is gone.
	h, err := b.Acquire(ctx, "abandoned")
	if err != nil {
		t.Fatalf("acquire after holder disconnect: %v", err)
	}
	if err := b.ReleaseHold(h); err != nil {
		t.Fatal(err)
	}
}

// clientBackpressure checks the per-connection queue bound: beyond
// MaxClientInflight outstanding requests the member sheds the excess
// with the busy sentinel instead of queueing without bound.
func clientBackpressure(t *testing.T, sub ClientSubstrate) {
	conns := sub.start(t, lockservice.Config{Shards: 1}, 2, 2)
	a, b := conns[0], conns[1]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	hold, err := a.Acquire(ctx, "full")
	if err != nil {
		t.Fatal(err)
	}
	const extra = 8
	waitCtx, waitCancel := context.WithCancel(context.Background())
	var busy, canceled atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < transport.MaxClientInflight+extra; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := b.Acquire(waitCtx, "full")
			switch {
			case errors.Is(err, client.ErrBusy):
				busy.Add(1)
			case errors.Is(err, context.Canceled):
				canceled.Add(1)
			case err != nil:
				t.Errorf("queued acquire: %v", err)
			}
		}()
	}
	// Shed responses arrive quickly; queued ones block until canceled.
	deadline := time.Now().Add(10 * time.Second)
	for busy.Load() < extra && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	waitCancel()
	wg.Wait()
	if got := busy.Load(); got != extra {
		t.Fatalf("busy rejections = %d, want %d", got, extra)
	}
	if err := a.ReleaseHold(hold); err != nil {
		t.Fatal(err)
	}
}

// clientCoalescedFences is the coalescing battery's core check: a
// cohort of waiters parked on ONE key is rotated through the member's
// single slot (the grant regranted locally instead of each waiter
// issuing its own DAG acquire), and every waiter must still see its
// own fence — all distinct, and strictly increasing in grant order.
// Coalescing is an optimization; fencing is the contract it must not
// bend.
func clientCoalescedFences(t *testing.T, sub ClientSubstrate) {
	const waiters, perWaiter = 6, 8
	conns := sub.start(t, lockservice.Config{Shards: 1}, 2, waiters)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var mu sync.Mutex
	fences := make([]uint64, 0, waiters*perWaiter) // appended inside the CS
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *client.Conn) {
			defer wg.Done()
			for j := 0; j < perWaiter; j++ {
				h, err := c.Acquire(ctx, "coalesced")
				if err != nil {
					t.Errorf("waiter %d acquire: %v", i, err)
					return
				}
				mu.Lock()
				fences = append(fences, h.Fence)
				mu.Unlock()
				if err := c.ReleaseHold(h); err != nil {
					t.Errorf("waiter %d release: %v", i, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	if len(fences) != waiters*perWaiter {
		t.Fatalf("grants = %d, want %d", len(fences), waiters*perWaiter)
	}
	seen := make(map[uint64]bool, len(fences))
	for k, f := range fences {
		if seen[f] {
			t.Fatalf("fence %d granted twice", f)
		}
		seen[f] = true
		if k > 0 && f <= fences[k-1] {
			t.Fatalf("grant %d fence %d not above predecessor's %d", k, f, fences[k-1])
		}
	}
}

// clientCoalescedCancelIsolation checks that cancelling one waiter of a
// coalesced cohort cancels only that waiter: the others are neither
// cancelled nor starved, and every survivor still gets a grant.
func clientCoalescedCancelIsolation(t *testing.T, sub ClientSubstrate) {
	const waiters = 4
	conns := sub.start(t, lockservice.Config{Shards: 1}, 2, waiters+1)
	holder := conns[waiters]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	hold, err := holder.Acquire(ctx, "cohort")
	if err != nil {
		t.Fatal(err)
	}
	// Park the whole cohort behind the holder, one waiter on a doomed
	// context.
	doomedCtx, doom := context.WithCancel(ctx)
	var granted atomic.Int64
	doomed := make(chan error, 1)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int, c *client.Conn) {
			defer wg.Done()
			wctx := ctx
			if i == 0 {
				wctx = doomedCtx
			}
			h, err := c.Acquire(wctx, "cohort")
			if i == 0 {
				doomed <- err
				if err == nil {
					_ = c.ReleaseHold(h)
				}
				return
			}
			if err != nil {
				t.Errorf("waiter %d acquire: %v", i, err)
				return
			}
			granted.Add(1)
			if err := c.ReleaseHold(h); err != nil {
				t.Errorf("waiter %d release: %v", i, err)
			}
		}(i, conns[i])
	}
	time.Sleep(50 * time.Millisecond) // let the cohort queue up
	doom()
	if err := <-doomed; !errors.Is(err, context.Canceled) {
		t.Fatalf("doomed waiter = %v, want context.Canceled", err)
	}
	if err := holder.ReleaseHold(hold); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := granted.Load(); got != waiters-1 {
		t.Fatalf("surviving waiters granted = %d, want %d", got, waiters-1)
	}
}

// clientCoalescedDisconnectIsolation checks the crash variant: a waiter
// whose connection drops mid-coalesce takes only its own claim with it.
// The cohort's other waiters still acquire, and nothing is parked —
// after the survivors drain, a fresh client acquires immediately.
func clientCoalescedDisconnectIsolation(t *testing.T, sub ClientSubstrate) {
	const survivors = 3
	conns := sub.start(t, lockservice.Config{Shards: 1}, 2, survivors+2)
	holder, vanishing := conns[survivors], conns[survivors+1]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	hold, err := holder.Acquire(ctx, "dropped")
	if err != nil {
		t.Fatal(err)
	}
	var granted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < survivors; i++ {
		wg.Add(1)
		go func(i int, c *client.Conn) {
			defer wg.Done()
			h, err := c.Acquire(ctx, "dropped")
			if err != nil {
				t.Errorf("survivor %d acquire: %v", i, err)
				return
			}
			granted.Add(1)
			if err := c.ReleaseHold(h); err != nil {
				t.Errorf("survivor %d release: %v", i, err)
			}
		}(i, conns[i])
	}
	gone := make(chan struct{})
	go func() {
		defer close(gone)
		// This waiter queues with the cohort, then its process "crashes".
		_, _ = vanishing.Acquire(ctx, "dropped")
	}()
	time.Sleep(50 * time.Millisecond) // let the cohort queue up
	if err := vanishing.Close(); err != nil {
		t.Fatal(err)
	}
	<-gone
	if err := holder.ReleaseHold(hold); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := granted.Load(); got != survivors {
		t.Fatalf("survivors granted = %d, want %d", got, survivors)
	}
	// Nothing may be left parked for the vanished waiter: a fresh
	// acquire on the same key completes immediately.
	h, err := holder.Acquire(ctx, "dropped")
	if err != nil {
		t.Fatalf("acquire after disconnected waiter: %v", err)
	}
	if err := holder.ReleaseHold(h); err != nil {
		t.Fatal(err)
	}
}
