// Package conformance is a reusable test battery that every mutual-
// exclusion protocol in this repository must pass: safety (the cluster
// monitor fails the run on overlapping critical sections), liveness (every
// request is eventually served; deadlock and livelock are detected),
// exact grant accounting, and randomized stress over seeds, loads and
// latency distributions.
//
// Each algorithm package's tests call Run with a Factory describing how to
// configure that protocol for a given cluster size.
package conformance

import (
	"fmt"
	"math/rand"
	"testing"

	"dagmutex/internal/check"
	"dagmutex/internal/cluster"
	"dagmutex/internal/mutex"
	"dagmutex/internal/sim"
	"dagmutex/internal/workload"
)

// Factory describes one protocol to the battery.
type Factory struct {
	// Name labels subtests.
	Name string
	// Builder constructs protocol nodes.
	Builder mutex.Builder
	// Config produces a cluster configuration for n nodes with the given
	// initial holder/coordinator (ignored by symmetric protocols).
	Config func(n int, holder mutex.ID) mutex.Config
	// Sizes lists the cluster sizes to exercise; defaults to {2, 3, 5, 9}.
	Sizes []int
	// BypassBound bounds, as a multiple of N, how many later-issued
	// requests may overtake an earlier one before the battery flags
	// starvation. Defaults to 3 (i.e. 3·N bypasses allowed).
	BypassBound int
}

func (f Factory) sizes() []int {
	if len(f.Sizes) > 0 {
		return f.Sizes
	}
	return []int{2, 3, 5, 9}
}

// largest returns the biggest configured size, used by subtests that need
// one representative cluster.
func (f Factory) largest() int {
	max := 0
	for _, n := range f.sizes() {
		if n > max {
			max = n
		}
	}
	return max
}

func (f Factory) bypassBound(n int) int {
	mult := f.BypassBound
	if mult == 0 {
		mult = 3
	}
	return mult * n
}

// Run executes the full battery.
func Run(t *testing.T, f Factory) {
	t.Helper()
	t.Run("SequentialRoundRobin", f.sequentialRoundRobin)
	t.Run("HolderReentry", f.holderReentry)
	t.Run("HeavyLoadAllNodes", f.heavyLoad)
	t.Run("PoissonRandomized", f.poisson)
	t.Run("RandomLatency", f.randomLatency)
	t.Run("WaitingRequesterServedAfterExit", f.waitingRequester)
}

// sequentialRoundRobin has every node enter once, strictly one at a time.
func (f Factory) sequentialRoundRobin(t *testing.T) {
	for _, n := range f.sizes() {
		cfg := f.Config(n, 1)
		c, err := cluster.New(f.Builder, cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		gap := sim.Time(1000) * sim.Hop // far apart: no contention
		for i, id := range cfg.IDs {
			c.RequestAt(sim.Time(i)*gap, id)
		}
		if err := c.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := c.Entries(); got != n {
			t.Fatalf("n=%d: entries = %d, want %d", n, got, n)
		}
		for i, g := range c.Grants() {
			if g.Node != cfg.IDs[i] {
				t.Fatalf("n=%d: grant %d went to node %d, want %d", n, i, g.Node, cfg.IDs[i])
			}
		}
	}
}

// holderReentry has the initial holder (or an arbitrary node, for
// symmetric protocols) enter repeatedly with no contention.
func (f Factory) holderReentry(t *testing.T) {
	cfg := f.Config(f.largest(), 2)
	c, err := cluster.New(f.Builder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	workload.Closed{Nodes: []mutex.ID{2}, Requests: 10, Think: workload.Fixed(sim.Hop)}.Install(c)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Entries(); got != 10 {
		t.Fatalf("entries = %d, want 10", got)
	}
}

// heavyLoad saturates every node (§6.2's heavy-demand regime).
func (f Factory) heavyLoad(t *testing.T) {
	for _, n := range f.sizes() {
		cfg := f.Config(n, 1)
		c, err := cluster.New(f.Builder, cfg, cluster.WithCSTime(sim.Hop/2))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		const perNode = 10
		workload.Closed{Requests: perNode}.Install(c)
		if err := c.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := c.Entries(), perNode*n; got != want {
			t.Fatalf("n=%d: entries = %d, want %d", n, got, want)
		}
		if err := check.BoundedBypass(c.Grants(), f.bypassBound(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

// poisson runs randomized arrivals over several seeds.
func (f Factory) poisson(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			n := f.largest()
			cfg := f.Config(n, 3)
			c, err := cluster.New(f.Builder, cfg,
				cluster.WithSeed(seed), cluster.WithCSTime(sim.Hop))
			if err != nil {
				t.Fatal(err)
			}
			workload.Closed{
				Requests: 8,
				Think:    workload.Exponential(4 * sim.Hop),
				Rng:      rand.New(rand.NewSource(seed * 977)),
			}.Install(c)
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			if got, want := c.Entries(), 8*n; got != want {
				t.Fatalf("entries = %d, want %d", got, want)
			}
			if err := check.BoundedBypass(c.Grants(), f.bypassBound(n)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// randomLatency repeats the stress under non-uniform link delays (still
// FIFO per link, per the paper's model).
func (f Factory) randomLatency(t *testing.T) {
	n := f.largest()
	cfg := f.Config(n, 1)
	c, err := cluster.New(f.Builder, cfg,
		cluster.WithSeed(42),
		cluster.WithCSTime(sim.Hop),
		cluster.WithNetworkOptions(sim.WithLatency(sim.UniformLatency(sim.Hop/2, 3*sim.Hop))))
	if err != nil {
		t.Fatal(err)
	}
	workload.Closed{
		Requests: 6,
		Think:    workload.Exponential(2 * sim.Hop),
		Rng:      rand.New(rand.NewSource(7)),
	}.Install(c)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Entries(), 6*n; got != want {
		t.Fatalf("entries = %d, want %d", got, want)
	}
}

// waitingRequester checks the §6.3 scenario end to end: a request issued
// while another node occupies the CS is served after that node exits, and
// the grant is recorded as a waiting grant.
func (f Factory) waitingRequester(t *testing.T) {
	cfg := f.Config(f.largest(), 1)
	c, err := cluster.New(f.Builder, cfg, cluster.WithCSTime(100*sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 1)
	c.RequestAt(10*sim.Hop, 3) // lands well inside node 1's section
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	grants := c.Grants()
	if len(grants) != 2 {
		t.Fatalf("grants = %d, want 2", len(grants))
	}
	if grants[1].Node != 3 || !grants[1].Waited() {
		t.Fatalf("second grant %+v, want waiting grant at node 3", grants[1])
	}
}
