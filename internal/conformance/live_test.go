package conformance

import (
	"testing"

	"dagmutex/internal/core"
	"dagmutex/internal/mutex"
	"dagmutex/internal/topology"
	"dagmutex/internal/transport"
)

// dagFactory configures the DAG algorithm for the live battery the same
// way internal/core's simulator conformance does.
func dagFactory() Factory {
	return Factory{
		Name:    "dag",
		Builder: core.Builder,
		Config: func(n int, holder mutex.ID) mutex.Config {
			tree := topology.Star(n)
			return mutex.Config{IDs: tree.IDs(), Holder: holder, Parent: tree.ParentsToward(holder)}
		},
	}
}

// TestDAGLiveOverBothLinkLayers runs the identical live battery over the
// in-process and TCP link layers: same runtime, same subtests, only the
// Link differs.
func TestDAGLiveOverBothLinkLayers(t *testing.T) {
	RunLive(t, dagFactory(), Substrates(transport.DAGCodec{}))
}
