package conformance

import (
	"context"
	"testing"
	"time"

	"dagmutex/internal/failure"
	"dagmutex/internal/mutex"
	"dagmutex/internal/runtime"
	"dagmutex/internal/transport"
)

// ChaosCluster is the surface the chaos battery drives: blocking
// sessions plus the fault controls every chaos-capable link layer
// provides — kill a member, partition the cluster, heal it.
type ChaosCluster interface {
	Session(id mutex.ID) *runtime.Session
	Kill(id mutex.ID) error
	Partition(groups ...[]mutex.ID)
	Heal()
	Err() error
	Close()
}

// ChaosSubstrate describes one chaos-capable link layer to the battery.
type ChaosSubstrate struct {
	// Name labels subtests ("local", "tcp").
	Name string
	// New starts a cluster with failure detection armed (fcfg) and a
	// fault plan installed.
	New func(b mutex.Builder, cfg mutex.Config, fcfg failure.Config) (ChaosCluster, error)
}

// chaosLocal adapts transport.Local.
type chaosLocal struct{ l *transport.Local }

func (c chaosLocal) Session(id mutex.ID) *runtime.Session { return c.l.Session(id) }
func (c chaosLocal) Kill(id mutex.ID) error               { return c.l.Kill(id) }
func (c chaosLocal) Partition(groups ...[]mutex.ID)       { c.l.Injector().Partition(groups...) }
func (c chaosLocal) Heal()                                { c.l.Injector().Heal() }
func (c chaosLocal) Err() error                           { return c.l.Err() }
func (c chaosLocal) Close()                               { c.l.Close() }

// chaosTCP adapts transport.TCPCluster in chaos mode.
type chaosTCP struct{ c *transport.TCPCluster }

func (c chaosTCP) Session(id mutex.ID) *runtime.Session { return c.c.Session(id) }
func (c chaosTCP) Kill(id mutex.ID) error               { return c.c.Kill(id) }
func (c chaosTCP) Partition(groups ...[]mutex.ID)       { c.c.Injector().Partition(groups...) }
func (c chaosTCP) Heal()                                { c.c.Injector().Heal() }
func (c chaosTCP) Err() error                           { return c.c.Err() }
func (c chaosTCP) Close()                               { c.c.Close() }

// ChaosSubstrates returns the chaos-capable link layers the battery runs
// identically over: in-process mailboxes with the fault injector, and
// loopback TCP where a kill tears real sockets down (peers see the same
// connection resets a dead OS process produces).
func ChaosSubstrates(codec transport.Codec) []ChaosSubstrate {
	return []ChaosSubstrate{
		{
			Name: "local",
			New: func(b mutex.Builder, cfg mutex.Config, fcfg failure.Config) (ChaosCluster, error) {
				l, err := transport.NewLocal(b, cfg, transport.WithFailureDetection(fcfg))
				if err != nil {
					return nil, err
				}
				return chaosLocal{l: l}, nil
			},
		},
		{
			Name: "tcp",
			New: func(b mutex.Builder, cfg mutex.Config, fcfg failure.Config) (ChaosCluster, error) {
				c, err := transport.NewTCPClusterChaos(b, cfg, codec, fcfg, failure.NewInjector())
				if err != nil {
					return nil, err
				}
				return chaosTCP{c: c}, nil
			},
		},
	}
}

// chaosDetection is the battery's detector tuning: fast enough that a
// whole scenario (suspect, probe, reorient, re-grant) completes in well
// under a second, slow enough that loaded CI schedulers do not produce
// false suspicion.
func chaosDetection() failure.Config {
	return failure.Config{Heartbeat: 10 * time.Millisecond, SuspectAfter: 120 * time.Millisecond}
}

// RunChaos executes the crash battery for protocol f over every chaos
// substrate: kill the token holder mid-critical-section, kill a queued
// waiter, partition and heal. It requires a protocol that implements
// mutex.MembershipHandler (the DAG algorithm); like the soak lanes it is
// skipped under -short.
func RunChaos(t *testing.T, f Factory, subs []ChaosSubstrate) {
	t.Helper()
	if testing.Short() {
		t.Skip("chaos battery skipped in -short (timing-dependent fault injection)")
	}
	for _, sub := range subs {
		sub := sub
		t.Run(sub.Name, func(t *testing.T) {
			t.Run("KillHolderMidCS", func(t *testing.T) { chaosKillHolder(t, f, sub) })
			t.Run("KillWaiter", func(t *testing.T) { chaosKillWaiter(t, f, sub) })
			t.Run("PartitionHeal", func(t *testing.T) { chaosPartitionHeal(t, f, sub) })
		})
	}
}

func (f Factory) chaosCluster(t *testing.T, sub ChaosSubstrate, n int, holder mutex.ID) (ChaosCluster, mutex.Config) {
	t.Helper()
	cfg := f.Config(n, holder)
	c, err := sub.New(f.Builder, cfg, chaosDetection())
	if err != nil {
		t.Fatalf("start %s chaos cluster (n=%d): %v", sub.Name, n, err)
	}
	t.Cleanup(c.Close)
	return c, cfg
}

// chaosKillHolder is the acceptance scenario: the token holder dies
// inside its critical section with a waiter queued. The failure
// subsystem must detect the death, regenerate the token, and serve the
// waiter — under a fencing generation strictly above the dead holder's.
func chaosKillHolder(t *testing.T, f Factory, sub ChaosSubstrate) {
	c, _ := f.chaosCluster(t, sub, 5, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	holder := c.Session(1)
	g1, err := holder.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}

	waiter := c.Session(3)
	type res struct {
		g   runtime.Grant
		err error
	}
	done := make(chan res, 1)
	go func() {
		g, err := waiter.Acquire(ctx)
		done <- res{g, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the REQUEST queue behind the doomed holder

	killedAt := time.Now()
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("waiter acquire after holder kill: %v", r.err)
	}
	t.Logf("recovered in %v (generation %d -> %d)", time.Since(killedAt), g1.Generation, r.g.Generation)
	if r.g.Generation <= g1.Generation {
		t.Fatalf("post-kill generation %d not above dead holder's %d", r.g.Generation, g1.Generation)
	}
	if err := waiter.Release(); err != nil {
		t.Fatal(err)
	}

	// The survivors keep making progress with monotonic fences.
	last := r.g.Generation
	for _, id := range []mutex.ID{2, 4, 5} {
		h := c.Session(id)
		g, err := h.Acquire(ctx)
		if err != nil {
			t.Fatalf("survivor %d acquire: %v", id, err)
		}
		if g.Generation <= last {
			t.Fatalf("survivor %d generation %d not above %d", id, g.Generation, last)
		}
		last = g.Generation
		if err := h.Release(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error after recovery: %v (a crash must not be cluster-fatal)", err)
	}
}

// chaosKillWaiter kills a queued waiter: the rebuild must excise it from
// the FOLLOW chain so the holder's release does not strand the token on
// a dead node.
func chaosKillWaiter(t *testing.T, f Factory, sub ChaosSubstrate) {
	c, _ := f.chaosCluster(t, sub, 5, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	holder := c.Session(1)
	g1, err := holder.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 queues behind the holder, then dies waiting.
	go func() { _, _ = c.Session(3).Acquire(ctx) }()
	time.Sleep(50 * time.Millisecond)
	if err := c.Kill(3); err != nil {
		t.Fatal(err)
	}
	// Whether the release races the recovery or follows it, the token
	// must end up serving live nodes: either the rebuild already excised
	// the dead waiter, or the token is briefly lost to it and the next
	// recovery regenerates it.
	time.Sleep(20 * time.Millisecond)
	if err := holder.Release(); err != nil {
		t.Fatal(err)
	}
	h4 := c.Session(4)
	g4, err := h4.Acquire(ctx)
	if err != nil {
		t.Fatalf("acquire after waiter death: %v", err)
	}
	if g4.Generation <= g1.Generation {
		t.Fatalf("generation %d not above pre-death %d", g4.Generation, g1.Generation)
	}
	if err := h4.Release(); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error after waiter death: %v", err)
	}
}

// chaosPartitionHeal isolates one member behind a partition: its acquire
// blocks (its REQUEST is lost in the cut), the majority keeps granting,
// and on heal the isolated member is re-admitted — its outstanding
// request is re-issued and served, and it stays a full participant.
func chaosPartitionHeal(t *testing.T, f Factory, sub ChaosSubstrate) {
	c, _ := f.chaosCluster(t, sub, 5, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Baseline entry so generations have a pre-partition high-water mark.
	h1 := c.Session(1)
	g1, err := h1.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Release(); err != nil {
		t.Fatal(err)
	}

	c.Partition([]mutex.ID{1, 3, 4, 5}, []mutex.ID{2})

	// The isolated member's acquire blocks: its REQUEST dies in the cut.
	type res struct {
		g   runtime.Grant
		err error
	}
	blocked := make(chan res, 1)
	go func() {
		g, err := c.Session(2).Acquire(ctx)
		blocked <- res{g, err}
	}()

	// Wait until the majority's coordinator (the highest ID) observes the
	// isolation — that is what arms the re-admission path (a recovery
	// bumps the epoch; the heal's Welcome carries it).
	select {
	case ev := <-c.Session(5).Membership():
		if !ev.Down || ev.Peer != 2 {
			t.Logf("first membership observation: %+v", ev)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never observed the isolated member going down")
	}

	// The majority keeps working through the partition (the token is on
	// its side; the recovery merely excises the unreachable member).
	last := g1.Generation
	for i := 0; i < 3; i++ {
		g, err := c.Session(4).Acquire(ctx)
		if err != nil {
			t.Fatalf("majority acquire during partition: %v", err)
		}
		if g.Generation <= last {
			t.Fatalf("majority generation %d not above %d", g.Generation, last)
		}
		last = g.Generation
		if err := c.Session(4).Release(); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case r := <-blocked:
		t.Fatalf("isolated member's acquire completed during the partition: %+v", r)
	default:
	}

	c.Heal()

	// Re-admission: the isolated member's outstanding request is
	// re-issued into the healed cluster and served.
	select {
	case r := <-blocked:
		if r.err != nil {
			t.Fatalf("isolated member's acquire after heal: %v", r.err)
		}
		if r.g.Generation <= last {
			t.Fatalf("post-heal generation %d not above majority's %d", r.g.Generation, last)
		}
		last = r.g.Generation
	case <-time.After(30 * time.Second):
		t.Fatal("isolated member's acquire never completed after heal")
	}
	if err := c.Session(2).Release(); err != nil {
		t.Fatal(err)
	}
	// And it stays a full participant.
	g2, err := c.Session(2).Acquire(ctx)
	if err != nil {
		t.Fatalf("re-acquire after heal: %v", err)
	}
	if g2.Generation <= last {
		t.Fatalf("re-acquire generation %d not above %d", g2.Generation, last)
	}
	if err := c.Session(2).Release(); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error after partition-and-heal: %v", err)
	}
}
