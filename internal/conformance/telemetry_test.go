package conformance

import "testing"

// TestTelemetryConsistency runs the telemetry battery over every client
// access path: the shared trace stream must conserve grants (each one
// ends in exactly one RELEASE, REGRANT, or EXPIRE) and order them (GRANT
// fences strictly monotonic per shard) whether the members run locally,
// over TCP, or behind the gateway tier.
func TestTelemetryConsistency(t *testing.T) {
	RunTelemetry(t, ClientSubstrates())
}
