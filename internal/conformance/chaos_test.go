package conformance

import (
	"testing"

	"dagmutex/internal/transport"
)

// TestDAGChaosOverBothLinkLayers runs the crash battery — kill the
// holder mid-CS, kill a waiter, partition and heal — identically over
// the in-process and TCP link layers. Gated like the soak lanes: skipped
// under -short.
func TestDAGChaosOverBothLinkLayers(t *testing.T) {
	RunChaos(t, dagFactory(), ChaosSubstrates(transport.DAGCodec{}))
}
