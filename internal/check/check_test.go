package check

import (
	"math/rand"
	"testing"

	"dagmutex/internal/cluster"
	"dagmutex/internal/core"
	"dagmutex/internal/mutex"
	"dagmutex/internal/sim"
	"dagmutex/internal/topology"
	"dagmutex/internal/workload"
)

func dagConfig(tree *topology.Tree, holder mutex.ID) mutex.Config {
	return mutex.Config{IDs: tree.IDs(), Holder: holder, Parent: tree.ParentsToward(holder)}
}

func TestAutomatonAcceptsRealRuns(t *testing.T) {
	topos := map[string]*topology.Tree{
		"line":   topology.Line(7),
		"star":   topology.Star(7),
		"kary":   topology.KAry(7, 2),
		"random": topology.Random(7, rand.New(rand.NewSource(3))),
	}
	for name, tree := range topos {
		t.Run(name, func(t *testing.T) {
			a := NewAutomaton()
			c, err := cluster.New(a.Builder, dagConfig(tree, 4), cluster.WithCSTime(sim.Hop))
			if err != nil {
				t.Fatal(err)
			}
			workload.Closed{Requests: 5, Think: workload.Exponential(3 * sim.Hop),
				Rng: rand.New(rand.NewSource(11))}.Install(c)
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			if err := a.Err(); err != nil {
				t.Fatalf("automaton violations: %v", err)
			}
			if a.Transitions() == 0 {
				t.Fatal("no transitions observed")
			}
			if got, want := c.Entries(), 5*tree.N(); got != want {
				t.Fatalf("entries = %d, want %d", got, want)
			}
		})
	}
}

func TestAutomatonRejectsIllegalTransition(t *testing.T) {
	a := NewAutomaton()
	a.states[1] = core.StateN
	a.observe(1, core.TransKeepToken, core.StateH) // 5 is illegal from N
	if a.Err() == nil {
		t.Fatal("illegal transition not flagged")
	}
	b := NewAutomaton()
	b.states[2] = core.StateN
	b.observe(2, core.TransRequest, core.StateH) // right edge, wrong landing state
	if b.Err() == nil {
		t.Fatal("wrong landing state not flagged")
	}
}

func TestQuiescentInvariantHoldsAfterRuns(t *testing.T) {
	tree := topology.KAry(10, 3)
	c, err := cluster.New(core.Builder, dagConfig(tree, 2))
	if err != nil {
		t.Fatal(err)
	}
	workload.Closed{Requests: 3}.Install(c)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	snaps, err := Snapshots(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := Quiescent(snaps); err != nil {
		t.Fatal(err)
	}
	if got := TokenCount(snaps); got != 1 {
		t.Fatalf("token count = %d, want 1", got)
	}
}

func TestQuiescentRejectsBadStates(t *testing.T) {
	mk := func(edit func([]core.Snapshot)) []core.Snapshot {
		snaps := []core.Snapshot{
			{ID: 1, Holding: true},
			{ID: 2, Next: 1},
			{ID: 3, Next: 2},
		}
		edit(snaps)
		return snaps
	}
	cases := []struct {
		name string
		edit func([]core.Snapshot)
	}{
		{"two holders", func(s []core.Snapshot) { s[1].Holding = true; s[1].Next = mutex.Nil }},
		{"no holder", func(s []core.Snapshot) { s[0].Holding = false }},
		{"dangling follow", func(s []core.Snapshot) { s[2].Follow = 1 }},
		{"requesting at quiescence", func(s []core.Snapshot) { s[2].Requesting = true; s[2].Next = mutex.Nil }},
		{"extra sink", func(s []core.Snapshot) { s[2].Next = mutex.Nil }},
		{"next cycle", func(s []core.Snapshot) { s[1].Next = 3 }},
	}
	for _, c := range cases {
		if err := Quiescent(mk(c.edit)); err == nil {
			t.Errorf("%s: Quiescent accepted a bad snapshot set", c.name)
		}
	}
}

func TestSinkPathsDetectsCycle(t *testing.T) {
	snaps := []core.Snapshot{
		{ID: 1, Next: 2},
		{ID: 2, Next: 3},
		{ID: 3, Next: 1},
	}
	if err := SinkPaths(snaps); err == nil {
		t.Fatal("cycle not detected")
	}
	snaps[2].Next = mutex.Nil
	if err := SinkPaths(snaps); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestSinkPathsDetectsEscape(t *testing.T) {
	snaps := []core.Snapshot{{ID: 1, Next: 42}}
	if err := SinkPaths(snaps); err == nil {
		t.Fatal("NEXT pointing outside the cluster not detected")
	}
}

func TestBoundedBypass(t *testing.T) {
	grants := []cluster.Grant{
		{Node: 1, ReqAt: 10},
		{Node: 2, ReqAt: 5},
		{Node: 3, ReqAt: 0},
	}
	// Grant 2 (ReqAt 0) was bypassed by two later-issued requests.
	if err := BoundedBypass(grants, 1); err == nil {
		t.Fatal("bypass above bound not flagged")
	}
	if err := BoundedBypass(grants, 2); err != nil {
		t.Fatalf("bypass within bound flagged: %v", err)
	}
}

func TestStarvationFreedomUnderHeavyLoad(t *testing.T) {
	// Theorem 2: under sustained contention every request is served; the
	// cluster run already fails on unserved requests, and bypass must stay
	// bounded.
	tree := topology.Star(8)
	c, err := cluster.New(core.Builder, dagConfig(tree, 1), cluster.WithCSTime(sim.Hop/2))
	if err != nil {
		t.Fatal(err)
	}
	workload.Closed{Requests: 20}.Install(c) // heavy: zero think time
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Entries(), 20*8; got != want {
		t.Fatalf("entries = %d, want %d", got, want)
	}
	if err := BoundedBypass(c.Grants(), 2*tree.N()); err != nil {
		t.Fatal(err)
	}
}
