// Package check validates the correctness properties Chapter 5 of the
// thesis proves: the Figure 4 state automaton, the single-token invariant,
// Lemma 2's bounded path to a sink, and quiescent-state consistency. The
// experiment harness and the stress tests run these continuously.
package check

import (
	"errors"
	"fmt"

	"dagmutex/internal/cluster"
	"dagmutex/internal/core"
	"dagmutex/internal/mutex"
)

// Automaton validates every observed state transition of every DAG node
// against the legal edges of the thesis's Figure 4. Use Builder in place
// of core.Builder when constructing the cluster.
type Automaton struct {
	states      map[mutex.ID]core.State
	transitions int
	errs        []error
}

// NewAutomaton returns an empty conformance checker.
func NewAutomaton() *Automaton {
	return &Automaton{states: make(map[mutex.ID]core.State)}
}

// Builder is a mutex.Builder that constructs core nodes instrumented with
// this checker.
func (a *Automaton) Builder(id mutex.ID, env mutex.Env, cfg mutex.Config) (mutex.Node, error) {
	initial := core.StateN
	if cfg.Holder == id {
		initial = core.StateH
	}
	a.states[id] = initial
	return core.New(id, env, cfg, core.WithTransitionObserver(func(tr core.Transition, to core.State) {
		a.observe(id, tr, to)
	}))
}

func (a *Automaton) observe(id mutex.ID, tr core.Transition, to core.State) {
	a.transitions++
	cur := a.states[id]
	want, legal := core.LegalTransitions[cur][tr]
	switch {
	case !legal:
		a.errs = append(a.errs,
			fmt.Errorf("node %d: transition %v illegal from state %v", id, tr, cur))
	case want != to:
		a.errs = append(a.errs,
			fmt.Errorf("node %d: transition %v from %v landed in %v, Figure 4 requires %v",
				id, tr, cur, to, want))
	}
	a.states[id] = to
}

// Transitions returns the number of transitions observed.
func (a *Automaton) Transitions() int { return a.transitions }

// Err returns the accumulated conformance violations, or nil.
func (a *Automaton) Err() error {
	if len(a.errs) == 0 {
		return nil
	}
	return errors.Join(a.errs...)
}

// Snapshots collects a core.Snapshot from every node of a cluster built
// from core (or Automaton) builders. It fails if any node is not a DAG
// node.
func Snapshots(c *cluster.Cluster) ([]core.Snapshot, error) {
	snaps := make([]core.Snapshot, 0, len(c.IDs()))
	for _, id := range c.IDs() {
		n, ok := c.Node(id).(interface{ Snapshot() core.Snapshot })
		if !ok {
			return nil, fmt.Errorf("check: node %d (%T) does not expose core snapshots", id, c.Node(id))
		}
		snaps = append(snaps, n.Snapshot())
	}
	return snaps, nil
}

// TokenCount returns how many nodes possess the token in the snapshot set.
// While a PRIVILEGE message is in flight the count is legitimately zero;
// it must never exceed one (thesis §5.1).
func TokenCount(snaps []core.Snapshot) int {
	holders := 0
	for _, s := range snaps {
		if s.HasToken() {
			holders++
		}
	}
	return holders
}

// SinkPaths verifies Lemma 2 on a snapshot set: from every node, following
// NEXT pointers reaches a node with NEXT = 0 in fewer than N steps. It is
// guaranteed only when no REQUEST is in flight (an in-transit request
// "carries" the edge it is traversing), so callers invoke it at message
// quiescence.
func SinkPaths(snaps []core.Snapshot) error {
	byID := make(map[mutex.ID]core.Snapshot, len(snaps))
	for _, s := range snaps {
		byID[s.ID] = s
	}
	n := len(snaps)
	for _, s := range snaps {
		steps := 0
		at := s
		for at.Next != mutex.Nil {
			nxt, ok := byID[at.Next]
			if !ok {
				return fmt.Errorf("check: node %d's NEXT=%d is not in the cluster", at.ID, at.Next)
			}
			at = nxt
			steps++
			if steps >= n {
				return fmt.Errorf("check: node %d's NEXT chain exceeds %d hops (Lemma 2 violated)", s.ID, n-1)
			}
		}
	}
	return nil
}

// Quiescent verifies the full steady-state invariant after a run has
// drained and all requests are served:
//
//   - exactly one node holds the token, idle (state H);
//   - that node is the unique sink;
//   - every FOLLOW pointer is clear;
//   - every node reaches the sink in fewer than N hops (Lemma 2).
func Quiescent(snaps []core.Snapshot) error {
	var holder mutex.ID
	holders, sinks := 0, 0
	for _, s := range snaps {
		switch st := s.State(); st {
		case core.StateH:
			holders++
			holder = s.ID
		case core.StateN:
			// fine
		default:
			return fmt.Errorf("check: node %d in state %v at quiescence", s.ID, st)
		}
		if s.Next == mutex.Nil {
			sinks++
		}
		if s.Follow != mutex.Nil {
			return fmt.Errorf("check: node %d has FOLLOW=%d at quiescence", s.ID, s.Follow)
		}
	}
	if holders != 1 {
		return fmt.Errorf("check: %d token holders at quiescence, want 1", holders)
	}
	if sinks != 1 {
		return fmt.Errorf("check: %d sinks at quiescence, want 1", sinks)
	}
	for _, s := range snaps {
		if s.Next == mutex.Nil && s.ID != holder {
			return fmt.Errorf("check: sink %d is not the holder %d", s.ID, holder)
		}
	}
	return SinkPaths(snaps)
}

// BoundedBypass verifies starvation-freedom evidence in a grant log: no
// request should see more than bound later-issued requests granted before
// it. For the DAG algorithm the implicit queue is FIFO-ish at the sink, so
// modest bounds hold; the stress tests use bound = N.
func BoundedBypass(grants []cluster.Grant, bound int) error {
	for i, g := range grants {
		bypass := 0
		for j := 0; j < i; j++ {
			if grants[j].ReqAt > g.ReqAt {
				bypass++
			}
		}
		if bypass > bound {
			return fmt.Errorf("check: grant %d (node %d) bypassed by %d later requests (bound %d)",
				i, g.Node, bypass, bound)
		}
	}
	return nil
}
