// Package raymond implements Raymond's tree-based token algorithm (ACM
// TOCS 1989), the closest predecessor of the thesis's DAG algorithm and
// its main baseline (thesis §2.7).
//
// Nodes sit on an unrooted logical tree. Each keeps HOLDER (the neighbor
// in whose direction the token lies), USING, ASKED, and a FIFO queue of
// neighbors (possibly including itself) with outstanding requests. A
// request travels hop by hop toward the token; the token retraces the path
// and re-points HOLDER as it moves.
//
// Costs (thesis §2.7, §6): between 0 and 2D messages per entry and a
// worst-case synchronization delay of D hops, where D is the diameter of
// the tree — against the DAG algorithm's D+1 worst-case messages and
// constant synchronization delay of 1.
package raymond

import (
	"fmt"

	"dagmutex/internal/mutex"
)

// request asks the neighbor it is sent to for the token on the sender's
// behalf. It carries no payload: Raymond's algorithm orders requests by
// arrival, not by sequence number.
type request struct{}

// Kind implements mutex.Message.
func (request) Kind() string { return "REQUEST" }

// Size implements mutex.Message.
func (request) Size() int { return 0 }

// privilege is the token.
type privilege struct{}

// Kind implements mutex.Message.
func (privilege) Kind() string { return "PRIVILEGE" }

// Size implements mutex.Message.
func (privilege) Size() int { return 0 }

// Node is one site running Raymond's algorithm.
type Node struct {
	id  mutex.ID
	env mutex.Env

	holder mutex.ID // self when this node has the token
	using  bool
	asked  bool
	queue  []mutex.ID // FIFO of requesters: neighbors, possibly self

	requesting bool
}

var _ mutex.Node = (*Node)(nil)

// New constructs a node. cfg.Holder is the initial token holder and
// cfg.Parent must orient every other node toward it.
func New(id mutex.ID, env mutex.Env, cfg mutex.Config) (*Node, error) {
	if err := mutex.ValidateIDs(cfg.IDs, id); err != nil {
		return nil, err
	}
	if cfg.Holder == mutex.Nil {
		return nil, fmt.Errorf("%w: no initial token holder designated", mutex.ErrBadConfig)
	}
	n := &Node{id: id, env: env}
	if cfg.Holder == id {
		n.holder = id
	} else {
		p, ok := cfg.Parent[id]
		if !ok || p == mutex.Nil || p == id {
			return nil, fmt.Errorf("%w: node %d lacks a parent toward holder %d",
				mutex.ErrBadConfig, id, cfg.Holder)
		}
		n.holder = p
	}
	return n, nil
}

// Builder adapts New to the mutex.Builder signature.
func Builder(id mutex.ID, env mutex.Env, cfg mutex.Config) (mutex.Node, error) {
	return New(id, env, cfg)
}

// ID implements mutex.Node.
func (n *Node) ID() mutex.ID { return n.id }

// Request implements mutex.Node: enqueue self, then run the two standard
// routines.
func (n *Node) Request() error {
	if n.requesting || n.using {
		return mutex.ErrOutstanding
	}
	n.requesting = true
	n.queue = append(n.queue, n.id)
	n.assignPrivilege()
	n.makeRequest()
	return nil
}

// Release implements mutex.Node.
func (n *Node) Release() error {
	if !n.using {
		return mutex.ErrNotInCS
	}
	n.using = false
	n.assignPrivilege()
	n.makeRequest()
	return nil
}

// Deliver implements mutex.Node.
func (n *Node) Deliver(from mutex.ID, m mutex.Message) error {
	switch m.(type) {
	case request:
		n.queue = append(n.queue, from)
	case privilege:
		if n.holder == n.id {
			return fmt.Errorf("%w: node %d received PRIVILEGE while holding", mutex.ErrUnexpectedMessage, n.id)
		}
		n.holder = n.id
		n.asked = false
	default:
		return fmt.Errorf("%w: %T", mutex.ErrUnexpectedMessage, m)
	}
	n.assignPrivilege()
	n.makeRequest()
	return nil
}

// assignPrivilege is Raymond's first standard routine: a token-holding,
// idle node with queued requests serves the head — locally if the head is
// itself, otherwise by passing the token toward the requester.
func (n *Node) assignPrivilege() {
	if n.holder != n.id || n.using || len(n.queue) == 0 {
		return
	}
	head := n.queue[0]
	n.queue = n.queue[1:]
	if head == n.id {
		n.using = true
		n.requesting = false
		n.env.Granted(0)
		return
	}
	n.holder = head
	n.asked = false
	n.env.Send(head, privilege{})
}

// makeRequest is Raymond's second standard routine: a node without the
// token, with queued requests, and with no REQUEST already outstanding
// forwards a single REQUEST toward the token.
func (n *Node) makeRequest() {
	if n.holder == n.id || n.asked || len(n.queue) == 0 {
		return
	}
	n.asked = true
	n.env.Send(n.holder, request{})
}

// Storage implements mutex.Node: HOLDER, USING, ASKED plus the local FIFO
// queue — the per-node structure the thesis's algorithm does away with.
func (n *Node) Storage() mutex.Storage {
	return mutex.Storage{
		Scalars:      3,
		QueueEntries: len(n.queue),
		Bytes:        2 + mutex.IntSize + len(n.queue)*mutex.IntSize,
	}
}
