package raymond

import (
	"errors"
	"testing"

	"dagmutex/internal/cluster"
	"dagmutex/internal/conformance"
	"dagmutex/internal/metrics"
	"dagmutex/internal/mutex"
	"dagmutex/internal/sim"
	"dagmutex/internal/topology"
)

func starConfig(n int, holder mutex.ID) mutex.Config {
	tree := topology.Star(n)
	return mutex.Config{IDs: tree.IDs(), Holder: holder, Parent: tree.ParentsToward(holder)}
}

func lineConfig(n int, holder mutex.ID) mutex.Config {
	tree := topology.Line(n)
	return mutex.Config{IDs: tree.IDs(), Holder: holder, Parent: tree.ParentsToward(holder)}
}

func TestConformanceOnStar(t *testing.T) {
	conformance.Run(t, conformance.Factory{Name: "raymond-star", Builder: Builder, Config: starConfig})
}

func TestConformanceOnLine(t *testing.T) {
	conformance.Run(t, conformance.Factory{Name: "raymond-line", Builder: Builder, Config: lineConfig})
}

func TestWorstCaseIsTwoDMessages(t *testing.T) {
	// §2.7: requester and token at opposite ends of a line: D REQUESTs
	// travel one way and D PRIVILEGEs travel back.
	const n = 6
	c, err := cluster.New(Builder, lineConfig(n, n))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 1)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	d := int64(n - 1)
	counts := c.Counts()
	if counts.Messages != 2*d {
		t.Fatalf("messages = %d, want %d (2D)", counts.Messages, 2*d)
	}
	if counts.ByKind["REQUEST"] != d || counts.ByKind["PRIVILEGE"] != d {
		t.Fatalf("by kind = %v, want %d of each", counts.ByKind, d)
	}
}

func TestStarWorstCaseIsFourMessages(t *testing.T) {
	// §6.1: Raymond on the centralized topology needs up to 2D = 4
	// messages (leaf -> center -> leaf each way), vs 3 for the DAG
	// algorithm.
	c, err := cluster.New(Builder, starConfig(7, 5))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 3) // leaf to leaf through the center
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Counts().Messages; got != 4 {
		t.Fatalf("messages = %d, want 4", got)
	}
}

func TestHolderReentryIsFree(t *testing.T) {
	c, err := cluster.New(Builder, lineConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 2)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Counts().Messages; got != 0 {
		t.Fatalf("messages = %d, want 0", got)
	}
}

func TestSynchronizationDelayGrowsWithDistance(t *testing.T) {
	// §6.3: Raymond's synchronization delay is up to D. Put the exiting
	// holder and the waiter at opposite ends of a line of 5 (D = 4).
	c, err := cluster.New(Builder, lineConfig(5, 5), cluster.WithCSTime(100*sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 5)         // holder occupies its CS for a long time
	c.RequestAt(2*sim.Hop, 1) // waiter at the far end
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ds := metrics.SyncDelays(c.Grants())
	if len(ds) != 1 || ds[0] != 4 {
		t.Fatalf("sync delays = %v, want [4] (D hops)", ds)
	}
}

func TestAskedSuppressesDuplicateRequests(t *testing.T) {
	// Two leaves request through the center: the center must forward only
	// one REQUEST to the token holder.
	c, err := cluster.New(Builder, starConfig(5, 2), cluster.WithCSTime(10*sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 3)
	c.RequestAt(0, 4)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Requests: 3->1, 4->1 (leaves to center), center forwards exactly one
	// to holder 2 for the first, then one more after the token returns.
	counts := c.Counts()
	if counts.ByKind["REQUEST"] > 4 {
		t.Fatalf("REQUESTs = %d, ASKED flag failed to suppress duplicates (trace: %v)",
			counts.ByKind["REQUEST"], counts.ByKind)
	}
	if c.Entries() != 2 {
		t.Fatalf("entries = %d, want 2", c.Entries())
	}
}

func TestRejectsBadConfig(t *testing.T) {
	env := nopEnv{}
	if _, err := New(2, env, mutex.Config{IDs: []mutex.ID{1, 2}, Holder: 1}); !errors.Is(err, mutex.ErrBadConfig) {
		t.Fatalf("missing parent accepted: %v", err)
	}
	if _, err := New(2, env, mutex.Config{IDs: []mutex.ID{1, 2}, Holder: 1,
		Parent: map[mutex.ID]mutex.ID{2: 2}}); !errors.Is(err, mutex.ErrBadConfig) {
		t.Fatalf("self parent accepted: %v", err)
	}
}

type nopEnv struct{}

func (nopEnv) Send(mutex.ID, mutex.Message) {}
func (nopEnv) Granted(uint64)               {}

func TestProtocolErrors(t *testing.T) {
	env := nopEnv{}
	n, err := New(1, env, lineConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Release(); !errors.Is(err, mutex.ErrNotInCS) {
		t.Fatalf("Release = %v", err)
	}
	if err := n.Deliver(2, privilege{}); !errors.Is(err, mutex.ErrUnexpectedMessage) {
		t.Fatalf("second token = %v", err)
	}
	if err := n.Deliver(2, bogus{}); !errors.Is(err, mutex.ErrUnexpectedMessage) {
		t.Fatalf("bogus = %v", err)
	}
}

type bogus struct{}

func (bogus) Kind() string { return "BOGUS" }
func (bogus) Size() int    { return 0 }

func TestQueueStorageGrowsUnderContention(t *testing.T) {
	c, err := cluster.New(Builder, starConfig(8, 1), cluster.WithCSTime(100*sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 8; i++ {
		c.RequestAt(sim.Time(i), mutex.ID(i))
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := metrics.StorageFrom(c.MaxStorage())
	if r.PerNodeMax.QueueEntries < 2 {
		t.Fatalf("max queue = %d, want >= 2 (center aggregates requests)", r.PerNodeMax.QueueEntries)
	}
}
