// Package client is the dialing side of the CLIENT wire protocol: a
// lightweight connection to one DAG member (or lock-service member) that
// acquires and releases through it without being a vertex of the token
// DAG. This is the member/client split that lets a small arbitration
// cluster serve a client population far larger than the tree — requests
// ride one framed TCP connection to the member, which queues them,
// arbitrates through the token protocol, and answers with the grant's
// fencing token and lease deadline.
//
// The frame layout is defined once, in internal/transport (see the
// client wire frame notes there, next to the DAG codec); this package
// implements correlation (many concurrent requests over one connection,
// matched by request id), context cancellation (a CANCEL frame
// propagates the client's context into the member's queue, and a grant
// that races the cancel is handed straight back), and the mapping of
// wire error codes onto the same sentinel errors in-process callers see,
// so errors.Is works identically on both sides of the wire.
package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dagmutex/internal/lockservice"
	"dagmutex/internal/runtime"
	"dagmutex/internal/transport"
)

// ErrClosed reports an operation on a closed (or failed) connection.
var ErrClosed = errors.New("client: connection closed")

// ErrBusy reports a request the member shed — either this connection
// already has its queue depth of requests outstanding (the default is
// transport.MaxClientInflight), or the member's admission rate limit
// was exceeded. The backpressure signal: drain, back off, or retry.
var ErrBusy = errors.New("client: member request queue full")

// Hold is one live remote grant: the fencing token to pass downstream
// and the lease deadline after which the member reclaims the resource.
type Hold struct {
	// Resource is the acquired resource name ("" for a member's single
	// mutex).
	Resource string
	// Fence is the grant's fencing token, strictly monotonic per
	// arbitrated resource.
	Fence uint64
	// Expires is the lease deadline (zero when the member runs without
	// leases).
	Expires time.Time
}

// resp is one decoded response frame.
type resp struct {
	op      byte
	payload []byte
}

// pending is one in-flight request's client-side state.
type pending struct {
	ch chan resp
	// resource is remembered so an abandoned acquire's racing grant can be
	// handed straight back with a release.
	resource string
	// abandoned is set when the caller gave up (context done) and no
	// longer listens on ch; the reader then disposes of the response.
	abandoned atomic.Bool
	// isAcquire marks requests whose racing success must be released.
	isAcquire bool
}

// Conn is one client connection to a member. All methods are safe for
// concurrent use; many requests may be in flight at once (bounded by the
// member's per-connection queue).
type Conn struct {
	conn net.Conn

	wmu  sync.Mutex // serializes writes of whole frames
	wbuf []byte     // request frame scratch, guarded by wmu

	mu     sync.Mutex
	reqs   map[uint64]*pending
	closed bool
	err    error
	nextID atomic.Uint64

	done chan struct{} // closed when the reader exits
}

// Dial connects to a member's client port (a TCPHost listener or a
// ClientGateway) and performs the protocol handshake.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial with connection-establishment bounded by ctx.
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	hs := make([]byte, 0, 8)
	hs = append(hs, transport.ClientMagic...)
	hs = binary.BigEndian.AppendUint32(hs, transport.ClientVersion)
	if _, err := conn.Write(hs); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("client: handshake with %s: %w", addr, err)
	}
	c := &Conn{conn: conn, reqs: make(map[uint64]*pending), done: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

// readLoop correlates response frames with their pending requests. An
// abandoned acquire whose grant arrives anyway is released immediately —
// the member must not think this client still holds it. The abandoned
// check and the channel delivery happen under c.mu, pairing with the
// abandon path in Acquire (which drains the channel under the same
// lock), so a grant can never slip between "caller gave up" and
// "response delivered" unobserved.
func (c *Conn) readLoop() {
	defer close(c.done)
	for {
		op, reqID, payload, err := transport.ReadClientFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		c.mu.Lock()
		p, ok := c.reqs[reqID]
		if ok {
			delete(c.reqs, reqID)
		}
		abandoned := ok && p.abandoned.Load()
		if ok && !abandoned {
			p.ch <- resp{op: op, payload: payload} // cap 1: never blocks
		}
		c.mu.Unlock()
		if abandoned && p.isAcquire && op == transport.RespGrant && len(payload) >= 8 {
			// The grant raced our cancel: hand it straight back.
			fence := binary.BigEndian.Uint64(payload[0:8])
			go func() { _ = c.sendRelease(p.resource, fence) }()
		}
	}
}

// fail marks the connection dead and wakes every pending request.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.closed {
		err = ErrClosed
	}
	if c.err == nil {
		c.err = err
	}
	reqs := c.reqs
	c.reqs = map[uint64]*pending{}
	c.mu.Unlock()
	for _, p := range reqs {
		if !p.abandoned.Load() {
			p.ch <- resp{op: transport.RespErr, payload: append([]byte{transport.CodeGeneric}, err.Error()...)}
		}
	}
}

// Err returns the connection's terminal error, if it has one.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.err
}

// Close hangs up. The member releases every hold this connection still
// owns and aborts its queued acquires — same as a client crash.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

// send registers a pending request and writes its frame. The frame is
// composed directly into the connection's reused scratch buffer under
// the write lock — header via AppendClientFrame (which owns the
// layout), then the optional fence and the resource name appended in
// place with the size patched — so the steady-state request path
// allocates only the pending entry.
func (c *Conn) send(op byte, resource string, fence uint64, withFence, isAcquire bool) (uint64, *pending, error) {
	id := c.nextID.Add(1)
	p := &pending{ch: make(chan resp, 1), resource: resource, isAcquire: isAcquire}
	c.mu.Lock()
	if c.closed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return 0, nil, err
	}
	c.reqs[id] = p
	c.mu.Unlock()
	c.wmu.Lock()
	b := transport.AppendClientFrame(c.wbuf[:0], op, id, nil)
	if withFence {
		b = binary.BigEndian.AppendUint64(b, fence)
	}
	b = append(b, resource...)
	binary.BigEndian.PutUint32(b[0:4], uint32(len(b)-4))
	c.wbuf = b
	_, err := c.conn.Write(b)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.reqs, id)
		c.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	return id, p, nil
}

// sendCancel propagates a context cancellation to the member; best
// effort (a broken connection tears everything down anyway).
func (c *Conn) sendCancel(reqID uint64) {
	c.wmu.Lock()
	c.wbuf = transport.AppendClientFrame(c.wbuf[:0], transport.OpCancel, reqID, nil)
	_, _ = c.conn.Write(c.wbuf)
	c.wmu.Unlock()
}

// sendRelease is the fire-and-forget release used to hand back a grant
// that raced a cancellation.
func (c *Conn) sendRelease(resource string, fence uint64) error {
	_, p, err := c.send(transport.OpRelease, resource, fence, true, false)
	if err != nil {
		return err
	}
	select {
	case <-p.ch:
	case <-c.done:
	}
	return nil
}

// Acquire locks resource through the member, blocking until the grant
// arrives, the connection dies, or ctx is done. On ctx expiry the
// cancellation is propagated to the member's queue and Acquire returns
// immediately; if the grant nonetheless wins the race on the wire it is
// handed straight back, so no hold is leaked.
func (c *Conn) Acquire(ctx context.Context, resource string) (Hold, error) {
	id, p, err := c.send(transport.OpAcquire, resource, 0, false, true)
	if err != nil {
		return Hold{}, err
	}
	select {
	case r := <-p.ch:
		return decodeGrant(resource, r)
	case <-ctx.Done():
		// Mark the request abandoned and drain any response that was
		// delivered concurrently, under the same lock the reader holds
		// while delivering: afterwards either we own the response (drained
		// here) or the reader will observe abandoned and hand a racing
		// grant straight back. Either way no hold leaks.
		c.mu.Lock()
		p.abandoned.Store(true)
		var orphan *resp
		select {
		case r := <-p.ch:
			orphan = &r
		default:
		}
		c.mu.Unlock()
		if orphan != nil && orphan.op == transport.RespGrant && len(orphan.payload) >= 8 {
			fence := binary.BigEndian.Uint64(orphan.payload[0:8])
			go func() { _ = c.sendRelease(resource, fence) }()
		}
		c.sendCancel(id)
		return Hold{}, fmt.Errorf("client: acquire %q: %w", resource, ctx.Err())
	}
}

// TryAcquire locks resource only if the member can grant it immediately
// — no queueing behind other clients and no token messages. It reports
// false (with no error) when the resource would have to be waited for.
func (c *Conn) TryAcquire(resource string) (Hold, bool, error) {
	_, p, err := c.send(transport.OpTry, resource, 0, false, true)
	if err != nil {
		return Hold{}, false, err
	}
	r := <-p.ch
	if r.op == transport.RespTry && len(r.payload) == 17 {
		if r.payload[0] == 0 {
			return Hold{}, false, nil
		}
		h := Hold{
			Resource: resource,
			Fence:    binary.BigEndian.Uint64(r.payload[1:9]),
			Expires:  nanosTime(binary.BigEndian.Uint64(r.payload[9:17])),
		}
		return h, true, nil
	}
	_, err = decodeGrant(resource, r)
	return Hold{}, false, err
}

// Release unlocks resource by name (whatever hold the member currently
// tracks for it on this connection's backend).
func (c *Conn) Release(resource string) error { return c.release(resource, 0) }

// ReleaseHold unlocks the exact hold h, matched by its fencing token; a
// hold whose lease already ran out reports lockservice.ErrLeaseExpired.
func (c *Conn) ReleaseHold(h Hold) error { return c.release(h.Resource, h.Fence) }

func (c *Conn) release(resource string, fence uint64) error {
	_, p, err := c.send(transport.OpRelease, resource, fence, true, false)
	if err != nil {
		return err
	}
	r := <-p.ch
	if r.op == transport.RespOK {
		return nil
	}
	return decodeErr(r)
}

func decodeGrant(resource string, r resp) (Hold, error) {
	if r.op == transport.RespGrant && len(r.payload) == 16 {
		return Hold{
			Resource: resource,
			Fence:    binary.BigEndian.Uint64(r.payload[0:8]),
			Expires:  nanosTime(binary.BigEndian.Uint64(r.payload[8:16])),
		}, nil
	}
	return Hold{}, decodeErr(r)
}

// decodeErr maps a respErr frame back onto the canonical sentinels.
func decodeErr(r resp) error {
	if r.op != transport.RespErr || len(r.payload) < 1 {
		return fmt.Errorf("client: malformed response op %d", r.op)
	}
	msg := string(r.payload[1:])
	var sentinel error
	switch r.payload[0] {
	case transport.CodeNotHeld:
		sentinel = lockservice.ErrNotHeld
	case transport.CodeLeaseExpired:
		sentinel = lockservice.ErrLeaseExpired
	case transport.CodeTryUnsupported:
		sentinel = runtime.ErrTryUnsupported
	case transport.CodeCanceled:
		sentinel = context.Canceled
	case transport.CodeBusy:
		sentinel = ErrBusy
	case transport.CodeNodeDown:
		sentinel = runtime.ErrNodeDown
	default:
		return fmt.Errorf("client: member error: %s", msg)
	}
	return fmt.Errorf("client: member error: %s: %w", msg, sentinel)
}

func nanosTime(n uint64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(n))
}
