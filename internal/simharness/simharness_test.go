package simharness

import (
	"strings"
	"testing"
	"time"

	"dagmutex/internal/mutex"
)

// TestConformanceTopologies runs a fault-free workload over every named
// topology: the invariant checker rides along (single holder, strictly
// monotonic fencing), and the run must actually grant.
func TestConformanceTopologies(t *testing.T) {
	for _, topo := range []string{"kary4", "kary8", "line", "star", "radial", "random"} {
		t.Run(topo, func(t *testing.T) {
			h, err := New(Config{Nodes: 25, Topology: topo, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			r, err := h.Run(Workload{Duration: time.Minute, Think: 500 * time.Millisecond, Hold: 2 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if r.Grants < 100 {
				t.Fatalf("only %d grants in a simulated minute on %s", r.Grants, topo)
			}
			if r.Recoveries != 0 || r.Regenerations != 0 {
				t.Fatalf("fault-free run recovered: %+v", r)
			}
		})
	}
}

// TestPathCompressionReducesHops: on a line (the worst tree), the
// compressed variant must need fewer messages per grant than the plain
// thesis rule under the same seed and workload.
func TestPathCompressionReducesHops(t *testing.T) {
	run := func(compress bool) Report {
		h, err := New(Config{Nodes: 40, Topology: "line", Seed: 11, Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		r, err := h.Run(Workload{Duration: time.Minute, Think: 200 * time.Millisecond, Hold: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain, compressed := run(false), run(true)
	if compressed.MsgsPerGrant >= plain.MsgsPerGrant {
		t.Fatalf("compression did not help: %.2f msgs/grant vs %.2f plain",
			compressed.MsgsPerGrant, plain.MsgsPerGrant)
	}
}

// TestChaosHolderCrashRegenerates: the initial token holder crashes
// while the cluster is busy — the token dies with it, the survivors
// must regenerate and keep granting, and the post-recovery fences must
// have jumped (the invariant checker would flag any regression).
func TestChaosHolderCrashRegenerates(t *testing.T) {
	h, err := New(Config{Nodes: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h.ScheduleCrash(10*time.Second, 1, 150*time.Millisecond)
	r, err := h.Run(Workload{Duration: time.Minute, Think: 300 * time.Millisecond, Hold: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Recoveries == 0 {
		t.Fatalf("holder crash triggered no recovery: %+v", r)
	}
	if r.Grants < 500 {
		t.Fatalf("cluster did not keep granting through the crash: %+v", r)
	}
}

// TestChaosCrashDuringProbe kills a second member inside the detection
// window of the first crash, so the second verdict lands while the
// coordinator's PROBE round is still collecting acknowledgments — the
// round must restart around the new death, not hang awaiting a corpse.
func TestChaosCrashDuringProbe(t *testing.T) {
	h, err := New(Config{Nodes: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// First crash detected at ~10s+150ms; the probe round then needs a
	// full delay-bounded round trip, so a crash 40ms after the verdicts
	// lands mid-collection.
	h.ScheduleCrash(10*time.Second, 1, 150*time.Millisecond)
	h.ScheduleCrash(10*time.Second+190*time.Millisecond, 25, 150*time.Millisecond)
	r, err := h.Run(Workload{Duration: time.Minute, Think: 300 * time.Millisecond, Hold: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Recoveries == 0 || r.Grants < 500 {
		t.Fatalf("cluster did not recover through the mid-probe crash: %+v", r)
	}
}

// TestChaosCoordinatorCrash kills the recovery coordinator (the
// highest-ID survivor) right after it starts collecting: the next
// survivor must take over the round.
func TestChaosCoordinatorCrash(t *testing.T) {
	h, err := New(Config{Nodes: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	h.ScheduleCrash(10*time.Second, 1, 150*time.Millisecond)
	// Node 50 coordinates the recovery of node 1; kill it mid-round.
	h.ScheduleCrash(10*time.Second+200*time.Millisecond, 50, 150*time.Millisecond)
	r, err := h.Run(Workload{Duration: time.Minute, Think: 300 * time.Millisecond, Hold: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Recoveries < 2 {
		t.Fatalf("coordinator handover did not restart the round: %+v", r)
	}
	if r.Grants < 500 {
		t.Fatalf("cluster did not keep granting through the handover: %+v", r)
	}
}

// TestChaosCrashDuringReorient lands a crash one round-trip after the
// verdicts — when the PROBE acknowledgments are back and the REORIENT
// installs are going out — exercising the tail of the epoch machinery.
func TestChaosCrashDuringReorient(t *testing.T) {
	h, err := New(Config{Nodes: 50, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	h.ScheduleCrash(10*time.Second, 1, 150*time.Millisecond)
	h.ScheduleCrash(10*time.Second+156*time.Millisecond, 30, 150*time.Millisecond)
	r, err := h.Run(Workload{Duration: time.Minute, Think: 300 * time.Millisecond, Hold: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Recoveries == 0 || r.Grants < 500 {
		t.Fatalf("cluster did not recover through the mid-reorient crash: %+v", r)
	}
}

// TestChaosDoublePartition cuts two disjoint minorities off in
// sequence. Each isolated group loses its quorum and freezes (no
// second token is ever minted on a minority side — the split-brain
// gate); the shrinking majority excises both groups and keeps
// granting. The per-side invariant checker fails the run on any
// cross-side fence regression or double holder.
func TestChaosDoublePartition(t *testing.T) {
	h, err := New(Config{Nodes: 30, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	h.SchedulePartition(10*time.Second, []mutex.ID{26, 27, 28, 29, 30}, 150*time.Millisecond)
	h.SchedulePartition(25*time.Second, []mutex.ID{21, 22, 23, 24, 25}, 150*time.Millisecond)
	r, err := h.Run(Workload{Duration: time.Minute, Think: 300 * time.Millisecond, Hold: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Grants < 300 {
		t.Fatalf("majority did not keep granting through two partitions: %+v", r)
	}
}

// TestSeededFaultBattery sweeps seeds over a fixed crash schedule: the
// point is breadth — every seed reshuffles delays, verdict jitter and
// workload timing, and the invariants must hold in all of them.
func TestSeededFaultBattery(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		h, err := New(Config{Nodes: 40, Topology: "random", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		h.ScheduleCrash(5*time.Second, mutex.ID(1+seed%40), 150*time.Millisecond)
		h.ScheduleCrash(15*time.Second, mutex.ID(1+(seed*7+3)%40), 150*time.Millisecond)
		r, err := h.Run(Workload{Duration: 30 * time.Second, Think: 300 * time.Millisecond, Hold: 2 * time.Millisecond})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Grants < 100 {
			t.Fatalf("seed %d: only %d grants: %+v", seed, r.Grants, r)
		}
	}
}

// TestScaleThousandNodes is the headline acceptance: 1000 nodes living
// through simulated hours of churn — crashes included — in wall-clock
// seconds. The wall bound is deliberately loose (CI machines vary); the
// report's WallDuration documents the real ratio.
func TestScaleThousandNodes(t *testing.T) {
	nodes, simHours := 1000, 2*time.Hour
	if testing.Short() {
		simHours = 30 * time.Minute
	}
	h, err := New(Config{Nodes: nodes, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	h.ScheduleCrash(20*time.Minute, 1, 200*time.Millisecond)
	h.ScheduleCrash(40*time.Minute, 500, 200*time.Millisecond)
	r, err := h.Run(Workload{
		Duration:   simHours,
		Requesters: 200,
		Think:      30 * time.Second,
		Hold:       5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scale report: %d nodes, %v simulated in %v wall (%.0fx), %d grants, %.2f msgs/grant, %d recoveries",
		r.Nodes, r.SimDuration, r.WallDuration,
		float64(r.SimDuration)/float64(r.WallDuration), r.Grants, r.MsgsPerGrant, r.Recoveries)
	if r.Grants < 1000 {
		t.Fatalf("scale run barely granted: %+v", r)
	}
	if r.WallDuration > time.Minute {
		t.Fatalf("simulated %v took %v wall — virtual time is not paying for itself", r.SimDuration, r.WallDuration)
	}
	if simHours >= 2*time.Hour && r.Recoveries == 0 {
		t.Fatalf("crashes scheduled but no recovery ran: %+v", r)
	}
}

// TestDeterministicReplay is the determinism contract: the same seed,
// topology, workload and fault schedule produce a byte-identical trace
// stream at 120 nodes — run twice, diff.
func TestDeterministicReplay(t *testing.T) {
	run := func() string {
		h, err := New(Config{Nodes: 120, Topology: "random", Seed: 23, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		h.ScheduleCrash(5*time.Second, 1, 150*time.Millisecond)
		h.ScheduleCrash(12*time.Second, 60, 150*time.Millisecond)
		h.SchedulePartition(20*time.Second, []mutex.ID{101, 102, 103, 104, 105, 106, 107, 108, 109, 110}, 150*time.Millisecond)
		if _, err := h.Run(Workload{Duration: 30 * time.Second, Think: 400 * time.Millisecond, Hold: 2 * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
		return h.FormatTrace()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("trace is empty")
	}
	if a != b {
		// Find the first divergence so the failure is diagnosable.
		la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("trace diverges at line %d:\n  run1: %s\n  run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(la), len(lb))
	}
}

// TestHarnessRejectsReuse: one harness is one run.
func TestHarnessRejectsReuse(t *testing.T) {
	h, err := New(Config{Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(Workload{Duration: time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(Workload{Duration: time.Second}); err == nil {
		t.Fatal("second Run on one harness succeeded")
	}
}
