package simharness

import (
	"fmt"
	"time"

	"dagmutex/internal/mutex"
)

// Fault schedules are part of a run's input: every crash, partition and
// detector verdict is a virtual-clock event placed before Run, so the
// same schedule replays identically under the same seed. The semantics
// mirror the live stack's failure path. A crash silences the member —
// in-flight messages to it are dropped on delivery (a token in flight
// to the victim dies with it, forcing a regeneration), and its driver
// stops. Detection is not instantaneous: each survivor receives its
// PeerDown verdict after the configured detect latency plus a small
// seeded jitter, exactly as a heartbeat detector staggers across a real
// cluster — which is what exercises the coordinator races (a crash
// landing mid-PROBE, a coordinator dying mid-collection) the epoch
// recovery exists for.

// verdictJitter spreads one fault's verdicts across the survivors, so
// recovery never starts in lockstep.
const verdictJitter = 2 * time.Millisecond

// ScheduleCrash schedules member victim to fail-stop at virtual time at
// (measured from the start of the run), with every survivor's PeerDown
// verdict landing detect plus jitter later. Call before Run.
func (h *Harness) ScheduleCrash(at time.Duration, victim mutex.ID, detect time.Duration) {
	h.clk.AfterFunc(at, func() {
		if h.down[victim] {
			return
		}
		h.down[victim] = true
		delete(h.inCS, victim) // a hold dies with its holder; recovery regenerates the token
		delete(h.driving, victim)
		for _, id := range h.ids {
			if id == victim || h.down[id] {
				continue
			}
			sid := id
			d := detect + time.Duration(h.rng.Int63n(int64(verdictJitter)))
			h.clk.AfterFunc(d, func() { h.verdictDown(sid, victim) })
		}
	})
}

// SchedulePartition cuts the members in isolate off from the rest of
// the cluster at virtual time at: sends across the cut are dropped from
// then on (messages already in flight still arrive), and after detect
// plus jitter each side receives PeerDown verdicts for every member of
// the other. The isolated minority loses its quorum and freezes instead
// of minting a token — the split-brain gate the battery asserts — while
// the majority excises the minority and carries on. The cut is
// permanent for the run (members do not rejoin); schedule a second,
// disjoint partition to exercise repeated shrinking.
func (h *Harness) SchedulePartition(at time.Duration, isolate []mutex.ID, detect time.Duration) {
	cut := append([]mutex.ID(nil), isolate...)
	h.clk.AfterFunc(at, func() {
		side := 0
		for _, s := range h.side {
			if s > side {
				side = s
			}
		}
		side++
		isolated := make(map[mutex.ID]bool, len(cut))
		for _, id := range cut {
			h.side[id] = side
			isolated[id] = true
		}
		for _, id := range h.ids {
			if h.down[id] {
				continue
			}
			observer := id
			for _, peer := range h.ids {
				if peer == observer || h.down[peer] || isolated[peer] == isolated[observer] {
					continue
				}
				dead := peer
				d := detect + time.Duration(h.rng.Int63n(int64(verdictJitter)))
				h.clk.AfterFunc(d, func() { h.verdictDown(observer, dead) })
			}
		}
	})
}

// verdictDown delivers one failure-detector verdict, unless the
// observer itself died (or was partitioned away from the suspect's
// side later — a verdict about an unreachable peer is still valid).
func (h *Harness) verdictDown(observer, dead mutex.ID) {
	if h.down[observer] {
		return
	}
	if err := h.nodes[observer].PeerDown(dead); err != nil {
		h.failf("verdict PeerDown(%d) at node %d at %v: %v", dead, observer, h.clk.Elapsed(), err)
	}
}

// Alive reports the members not crashed and still in the main
// partition, ascending.
func (h *Harness) Alive() []mutex.ID {
	var out []mutex.ID
	for _, id := range h.ids {
		if !h.down[id] && h.side[id] == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Coordinator returns the member that would coordinate a recovery in
// the current main partition: the highest-ID survivor. Fault schedules
// use it to aim "kill the coordinator mid-collection" scenarios.
func (h *Harness) Coordinator() mutex.ID {
	ids := h.Alive()
	if len(ids) == 0 {
		return mutex.Nil
	}
	return ids[len(ids)-1]
}

// String renders the schedule-relevant cluster state, for failure
// messages in tests.
func (h *Harness) String() string {
	return fmt.Sprintf("simharness{nodes=%d topo=%s seed=%d grants=%d msgs=%d}",
		len(h.ids), h.tree.Name(), h.cfg.Seed, h.grants, h.msgs)
}
