// Package simharness runs the full DAG-mutex protocol stack under
// virtual time: a cluster of real core.Node state machines wired to a
// simulated network whose message deliveries, workload drivers and
// fault schedules are all events on one vclock.Virtual. Nothing in a
// harness run ever sleeps or races — every handler executes on the
// clock's advancing goroutine, in deterministic (time, scheduling)
// order — so a thousand-node cluster living through simulated hours of
// churn completes in wall-clock milliseconds-to-seconds, and the same
// seed replays the same run byte for byte (see Harness.FormatTrace).
//
// The harness sits between two existing layers. internal/sim is the
// thesis experiment simulator: abstract ticks, per-protocol message
// counts, no failures. internal/transport's Local cluster is the live
// runtime on real goroutines: faithful, but its schedules are whatever
// the Go scheduler produces. simharness keeps sim's determinism (both
// run on the same internal/sched event heap) while exercising the real
// protocol code paths the live runtime runs — including the epoch
// recovery machinery, which sim never drives — under fault schedules
// that are part of the input, not an accident of timing.
//
// A run is: New a Harness, Schedule any faults, Run a Workload, read
// the Report. Invariants (single holder per connectivity component,
// strictly monotonic fencing per component) are checked on every grant
// during the run; violations fail the Run.
package simharness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dagmutex/internal/core"
	"dagmutex/internal/mutex"
	"dagmutex/internal/telemetry"
	"dagmutex/internal/topology"
	"dagmutex/internal/vclock"
)

// Config sizes and seeds a virtual cluster.
type Config struct {
	// Nodes is the cluster size; members are IDs 1..Nodes.
	Nodes int
	// Topology names the logical tree: "kary4" (default), "kary2"
	// (alias "binary"), "kary8", "line", "star", "radial" or "random"
	// (seeded).
	Topology string
	// Holder is the initial token holder (default 1).
	Holder mutex.ID
	// Seed drives everything stochastic: the random topology, per-message
	// link delays, workload think times and fault-verdict jitter. The
	// same seed and schedule replay the same run exactly.
	Seed int64
	// MinDelay and MaxDelay bound the uniform per-message link latency.
	// Defaults 200µs and 2ms.
	MinDelay, MaxDelay time.Duration
	// Compress enables Naimi–Trehel path compression on every node.
	Compress bool
	// Trace records the full structured trace stream (FormatTrace).
	// Costs memory proportional to the event count; leave off for
	// capacity runs.
	Trace bool
}

// Workload is one open-loop run: a subset of nodes repeatedly request
// the critical section, hold it, release, think, and request again
// until the simulated duration elapses.
type Workload struct {
	// Duration is the simulated run length.
	Duration time.Duration
	// Requesters is how many nodes drive requests (0 = every node),
	// spread evenly across the ID range.
	Requesters int
	// Think is the mean idle time between a release and the node's next
	// request (exponentially distributed). Default 1s.
	Think time.Duration
	// Hold is the critical-section residence time. Default 5ms.
	Hold time.Duration
}

// Report summarizes one Run.
type Report struct {
	Nodes        int           `json:"nodes"`
	Topology     string        `json:"topology"`
	Requesters   int           `json:"requesters"`
	Seed         int64         `json:"seed"`
	SimDuration  time.Duration `json:"sim_duration_ns"`
	WallDuration time.Duration `json:"wall_duration_ns"`
	Grants       int64         `json:"grants"`
	Messages     int64         `json:"messages"`
	Dropped      int64         `json:"dropped"`
	MsgsPerGrant float64       `json:"msgs_per_grant"`
	MaxFence     uint64        `json:"max_fence"`
	// Recoveries counts probe rounds started; Regenerations counts lost
	// tokens minted anew (each implies a RegenerationJump fence jump).
	Recoveries    int64 `json:"recoveries"`
	Regenerations int64 `json:"regenerations"`
}

// TraceRecord is one structured trace event stamped with its virtual
// time since the start of the run.
type TraceRecord struct {
	At time.Duration
	Ev telemetry.TraceEvent
}

type linkKey struct{ from, to mutex.ID }

// Harness is one virtual cluster. Not safe for concurrent use: every
// method runs on the goroutine that advances the clock (normally the
// test goroutine), which is also where every scheduled event fires.
type Harness struct {
	cfg  Config
	clk  *vclock.Virtual
	tree *topology.Tree
	rng  *rand.Rand

	nodes map[mutex.ID]*core.Node
	ids   []mutex.ID

	// lastAt is the per-link FIFO clamp: a link never delivers a later
	// send before an earlier one, whatever the jitter draws.
	lastAt map[linkKey]time.Time

	// down marks crashed members; side assigns each member to a
	// connectivity component (0 = the main partition; each SchedulePartition
	// call mints a fresh side for the isolated group).
	down map[mutex.ID]bool
	side map[mutex.ID]int

	// driver state: which members run the workload loop, and the request
	// lifecycle position of each (at most one outstanding request per
	// node, per the protocol contract).
	driving    map[mutex.ID]bool
	requesting map[mutex.ID]bool

	// invariant state, keyed by side.
	inCS     map[mutex.ID]bool
	maxFence map[int]uint64

	// wl is the active workload, set once by Run.
	wl Workload

	msgs       int64
	dropped    int64
	grants     int64
	recoveries int64
	regens     int64
	violations []string

	trace []TraceRecord

	ran bool
}

// New builds a virtual cluster per cfg: one core.Node per tree vertex,
// the token at cfg.Holder, NEXT pointers oriented toward it (the
// Figure 5 INIT steady state), all wired to the harness network.
func New(cfg Config) (*Harness, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("simharness: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Holder == mutex.Nil {
		cfg.Holder = 1
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 200 * time.Microsecond
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = 10 * cfg.MinDelay
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tree, err := buildTree(cfg.Topology, cfg.Nodes, rng)
	if err != nil {
		return nil, err
	}
	h := &Harness{
		cfg:        cfg,
		clk:        vclock.NewVirtual(),
		tree:       tree,
		rng:        rng,
		nodes:      make(map[mutex.ID]*core.Node, cfg.Nodes),
		ids:        tree.IDs(),
		lastAt:     make(map[linkKey]time.Time),
		down:       make(map[mutex.ID]bool),
		side:       make(map[mutex.ID]int),
		driving:    make(map[mutex.ID]bool),
		requesting: make(map[mutex.ID]bool),
		inCS:       make(map[mutex.ID]bool),
		maxFence:   make(map[int]uint64),
	}
	mcfg := mutex.Config{IDs: h.ids, Holder: cfg.Holder, Parent: tree.ParentsToward(cfg.Holder)}
	for _, id := range h.ids {
		env := &nodeEnv{h: h, id: id}
		opts := []core.Option{core.WithTraceObserver(h.observerFor(id))}
		if cfg.Compress {
			opts = append(opts, core.WithPathCompression())
		}
		n, err := core.New(id, env, mcfg, opts...)
		if err != nil {
			return nil, fmt.Errorf("simharness: node %d: %w", id, err)
		}
		h.nodes[id] = n
	}
	return h, nil
}

func buildTree(name string, n int, rng *rand.Rand) (*topology.Tree, error) {
	switch name {
	case "", "kary4":
		return topology.KAry(n, 4), nil
	case "kary2", "binary":
		return topology.KAry(n, 2), nil
	case "kary8":
		return topology.KAry(n, 8), nil
	case "line":
		return topology.Line(n), nil
	case "star":
		return topology.Star(n), nil
	case "radial":
		return topology.Radial(n), nil
	case "random":
		return topology.Random(n, rng), nil
	}
	return nil, fmt.Errorf("simharness: unknown topology %q", name)
}

// Clock exposes the run's virtual clock (for tests that advance it by
// hand after scheduling their own events).
func (h *Harness) Clock() *vclock.Virtual { return h.clk }

// Topology returns the logical tree the cluster was built on.
func (h *Harness) Topology() *topology.Tree { return h.tree }

// observerFor bridges one node's trace stream into the harness: the
// recovery counters always, the retained trace only when enabled.
func (h *Harness) observerFor(id mutex.ID) func(telemetry.TraceEvent) {
	return func(ev telemetry.TraceEvent) {
		if ev.Kind == telemetry.TraceRecovery {
			switch ev.Detail {
			case "PROBE":
				h.recoveries++
			case "REGENERATE":
				h.regens++
			}
		}
		if h.cfg.Trace {
			h.trace = append(h.trace, TraceRecord{At: h.clk.Elapsed(), Ev: ev})
		}
	}
}

// nodeEnv is the mutex.Env the harness hands each node: sends become
// scheduled deliveries, grants feed the invariant checker and the
// workload driver.
type nodeEnv struct {
	h  *Harness
	id mutex.ID
}

func (e *nodeEnv) Send(to mutex.ID, m mutex.Message) { e.h.send(e.id, to, m) }
func (e *nodeEnv) Granted(gen uint64)                { e.h.granted(e.id, gen) }
func (e *nodeEnv) GrantedHops(gen uint64, hops int)  { e.h.granted(e.id, gen) }

var _ mutex.HopGranter = (*nodeEnv)(nil)

// send schedules m's delivery after a seeded uniform link delay,
// clamped so the (from, to) link stays FIFO. Sends across an active
// partition cut are dropped at send time; messages already in flight
// when a cut lands still arrive (they were on the wire).
func (h *Harness) send(from, to mutex.ID, m mutex.Message) {
	if h.side[from] != h.side[to] {
		h.dropped++
		return
	}
	delay := h.cfg.MinDelay
	if span := h.cfg.MaxDelay - h.cfg.MinDelay; span > 0 {
		delay += time.Duration(h.rng.Int63n(int64(span)))
	}
	at := h.clk.Now().Add(delay)
	k := linkKey{from, to}
	if last := h.lastAt[k]; !at.After(last) {
		at = last.Add(time.Nanosecond)
	}
	h.lastAt[k] = at
	h.clk.AfterFunc(h.clk.Until(at), func() { h.deliver(from, to, m) })
}

// deliver hands m to its destination, unless the destination crashed
// while the message was in flight.
func (h *Harness) deliver(from, to mutex.ID, m mutex.Message) {
	if h.down[to] {
		h.dropped++
		return
	}
	h.msgs++
	if err := h.nodes[to].Deliver(from, m); err != nil {
		h.failf("deliver %s %d->%d at %v: %v", m.Kind(), from, to, h.clk.Elapsed(), err)
	}
}

// granted is every critical-section entry: the invariant checkpoint and
// the driver's grant→hold→release transition.
func (h *Harness) granted(id mutex.ID, gen uint64) {
	h.grants++
	side := h.side[id]
	for other := range h.inCS {
		if h.side[other] == side {
			h.failf("mutual exclusion violated at %v: nodes %d and %d both in CS (side %d)",
				h.clk.Elapsed(), other, id, side)
		}
	}
	if max := h.maxFence[side]; gen <= max {
		h.failf("fence regression at %v: node %d granted %d after %d (side %d)",
			h.clk.Elapsed(), id, gen, max, side)
	}
	h.maxFence[side] = gen
	h.inCS[id] = true
	h.requesting[id] = false
	if h.driving[id] {
		h.clk.AfterFunc(h.holdFor(), func() { h.driverRelease(id) })
	}
}

func (h *Harness) holdFor() time.Duration { return h.wl.Hold }

// failf records an invariant violation (capped: one storm, not a
// million lines).
func (h *Harness) failf(format string, args ...any) {
	if len(h.violations) < 32 {
		h.violations = append(h.violations, fmt.Sprintf(format, args...))
	}
}

// Run executes w against the cluster: starts the drivers, advances the
// virtual clock through w.Duration (firing every delivery, driver step
// and scheduled fault in deterministic order), and reports. Any
// invariant violation or protocol error fails the run.
func (h *Harness) Run(w Workload) (Report, error) {
	if h.ran {
		return Report{}, fmt.Errorf("simharness: harness already ran")
	}
	h.ran = true
	if w.Duration <= 0 {
		return Report{}, fmt.Errorf("simharness: workload needs a positive duration")
	}
	if w.Think <= 0 {
		w.Think = time.Second
	}
	if w.Hold <= 0 {
		w.Hold = 5 * time.Millisecond
	}
	if w.Requesters <= 0 || w.Requesters > len(h.ids) {
		w.Requesters = len(h.ids)
	}
	h.wl = w

	// Spread the requesters evenly across the ID range and stagger their
	// first requests across one mean think time, so the run does not
	// open with a synchronized thundering herd.
	stride := float64(len(h.ids)) / float64(w.Requesters)
	for i := 0; i < w.Requesters; i++ {
		id := h.ids[int(float64(i)*stride)]
		h.driving[id] = true
		h.clk.AfterFunc(time.Duration(h.rng.Int63n(int64(w.Think)+1)), func() { h.driverRequest(id) })
	}

	start := time.Now()
	h.clk.Advance(w.Duration)
	wall := time.Since(start)

	r := Report{
		Nodes:         len(h.ids),
		Topology:      h.tree.Name(),
		Requesters:    w.Requesters,
		Seed:          h.cfg.Seed,
		SimDuration:   w.Duration,
		WallDuration:  wall,
		Grants:        h.grants,
		Messages:      h.msgs,
		Dropped:       h.dropped,
		MaxFence:      h.maxFence[0],
		Recoveries:    h.recoveries,
		Regenerations: h.regens,
	}
	if h.grants > 0 {
		r.MsgsPerGrant = float64(h.msgs) / float64(h.grants)
	}
	if len(h.violations) > 0 {
		return r, fmt.Errorf("simharness: %d violation(s):\n  %s",
			len(h.violations), strings.Join(h.violations, "\n  "))
	}
	return r, nil
}

// driverRequest issues one CS request for id, unless the member crashed
// or still has a request outstanding (a recovery can re-queue a request
// that then lands after the driver moved on).
func (h *Harness) driverRequest(id mutex.ID) {
	if h.down[id] || h.requesting[id] || h.inCS[id] {
		return
	}
	if h.clk.Elapsed() >= h.wl.Duration {
		return
	}
	h.requesting[id] = true
	if err := h.nodes[id].Request(); err != nil {
		h.failf("request at node %d at %v: %v", id, h.clk.Elapsed(), err)
	}
}

// driverRelease leaves the CS and schedules the next request after an
// exponentially distributed think time.
func (h *Harness) driverRelease(id mutex.ID) {
	if h.down[id] || !h.inCS[id] {
		return
	}
	delete(h.inCS, id)
	if err := h.nodes[id].Release(); err != nil {
		h.failf("release at node %d at %v: %v", id, h.clk.Elapsed(), err)
		return
	}
	think := time.Duration(h.rng.ExpFloat64() * float64(h.wl.Think))
	h.clk.AfterFunc(think, func() { h.driverRequest(id) })
}

// Grants returns the number of critical-section entries so far (tests
// use the delta around a fault window to assert progress).
func (h *Harness) Grants() int64 { return h.grants }

// Trace returns the retained trace records (Config.Trace must be set).
func (h *Harness) Trace() []TraceRecord { return h.trace }

// FormatTrace renders the retained trace deterministically, one line
// per event: virtual timestamp plus the shared telemetry vocabulary.
// Two runs with the same Config, Workload and fault schedule produce
// byte-identical output — the determinism contract the replay tests
// pin.
func (h *Harness) FormatTrace() string {
	var b strings.Builder
	for _, r := range h.trace {
		fmt.Fprintf(&b, "t=%s %s\n", r.At, r.Ev.String())
	}
	return b.String()
}
