package gateway

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dagmutex/internal/client"
	"dagmutex/internal/transport"
)

// TestClientStatsSnapshotConsistency hammers the gateway from several
// dialed clients while concurrently snapshotting Stats, and checks every
// snapshot is one consistent cut of the admission counters: always
// Inflight == Admitted - Answered, inflight never negative, and at
// quiescence everything admitted has been answered. Under the race
// detector this also proves the counter updates are synchronized with
// the snapshot.
func TestClientStatsSnapshotConsistency(t *testing.T) {
	g, _, _ := gatewayCluster(t, false, transport.ClientQueue{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := g.Stats()
			if s.Inflight != s.Admitted-s.Answered || s.Inflight < 0 || s.Conns < 0 {
				snapErr = fmt.Errorf("inconsistent admission snapshot: %+v", s)
				return
			}
		}
	}()

	const clients, ops = 4, 50
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := client.DialContext(ctx, g.Addr())
			if err != nil {
				t.Errorf("dial gateway: %v", err)
				return
			}
			defer conn.Close()
			for j := 0; j < ops; j++ {
				h, err := conn.Acquire(ctx, "")
				if err != nil {
					t.Errorf("client %d acquire: %v", i, err)
					return
				}
				if err := conn.ReleaseHold(h); err != nil {
					t.Errorf("client %d release: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	s := g.Stats()
	if s.Inflight != 0 || s.Admitted != s.Answered {
		t.Fatalf("at quiescence inflight=%d admitted=%d answered=%d", s.Inflight, s.Admitted, s.Answered)
	}
	// Every acquire and release was admitted (no sheds configured here).
	if want := int64(clients * ops); s.Admitted < want {
		t.Fatalf("admitted %d, want at least %d", s.Admitted, want)
	}
	if s.Shed() != 0 {
		t.Fatalf("unexpected sheds: %+v", s)
	}
}
