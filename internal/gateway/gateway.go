// Package gateway is the scale-out tier of the member/client split: a
// standalone process that speaks the CLIENT wire protocol to a large
// population of dialed clients on one side and multiplexes all of them
// over a handful of upstream member connections on the other.
//
// A member's own listener already serves dialed clients, but every
// connection costs the member a goroutine and a socket; at thousands of
// clients that load lands on the same process that must keep the token
// protocol responsive. A gateway absorbs the fan-in instead: clients
// dial the gateway exactly as they would a member (same handshake, same
// frames, same sentinels), the gateway coalesces their requests onto
// one upstream connection per member, and the member sees a single
// well-behaved client whose requests its proxy coalesces further into
// single DAG acquires. Admission control (transport.ClientQueue) runs
// at the gateway's edge, so overload is shed before it ever crosses to
// the members.
//
// Routing is by resource: a named resource always lands on the same
// member (so the lock service's per-member slot coalescing keeps
// working), and a plain cluster's single mutex ("") always lands on one
// member (so its proxy coalesces the whole population). When the routed
// member is unreachable the gateway fails over to the next, and
// remembers which member granted a hold so the release finds it.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dagmutex/internal/client"
	"dagmutex/internal/lockservice"
	"dagmutex/internal/runtime"
	"dagmutex/internal/telemetry"
	"dagmutex/internal/transport"
	"dagmutex/internal/vclock"
)

// dialTimeout bounds each upstream dial attempt, so failover walks on
// to the next member instead of hanging on a dead one.
const dialTimeout = 2 * time.Second

// Reconnect backoff bounds for a failed upstream. After every failed
// dial the member is quarantined for a jittered, exponentially growing
// delay: requests routed there during the quarantine fail over
// immediately instead of each paying a fresh dial attempt (the previous
// lazy-redial behavior), and when the member comes back the jitter
// keeps a fleet of gateways from greeting it with one synchronized
// thundering herd of redials.
const (
	backoffBase = 50 * time.Millisecond
	backoffCap  = 2 * time.Second
)

// backoffDelay returns the quarantine after the n-th consecutive dial
// failure (n >= 1): backoffBase doubled per failure, capped at
// backoffCap, with uniform jitter over the upper half of the interval
// — the result is in [cap/2, cap) once saturated. rng supplies the
// jitter draw in [0, 1) (rand.Float64 in production; fixed in tests).
func backoffDelay(n int, rng func() float64) time.Duration {
	d := backoffCap
	if n < 10 { // beyond 2^9 the shift is past the cap anyway
		if shifted := backoffBase << (n - 1); shifted < d {
			d = shifted
		}
	}
	half := d / 2
	return half + time.Duration(rng()*float64(half))
}

// Config configures a Gateway.
type Config struct {
	// Listen is the gateway's client-facing listen address ("" for a
	// fresh loopback port).
	Listen string
	// Members are the member listen addresses to multiplex over (at
	// least one).
	Members []string
	// Queue is the admission control applied at the gateway's edge; the
	// zero value is the member default (depth 64, no rate limit).
	Queue transport.ClientQueue
	// Clock, when set, drives the reconnect-backoff quarantine deadlines
	// (nil means the system clock). The gateway is a TCP-facing tier, so
	// its dials and I/O stay on real time regardless; the clock only
	// decides when a quarantined member may be redialed — which is what
	// tests need to make backoff deterministic.
	Clock vclock.Clock
}

// Gateway is a running gateway: a client-protocol listener whose
// backend routes over upstream member connections. Construct with New;
// Close it to hang up every client and upstream.
type Gateway struct {
	srv *transport.ClientGateway
	b   *backend
}

// New starts a gateway per cfg. The member connections are dialed
// lazily (on first use, and again after a failure), so New succeeds
// even while the members are still coming up.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("gateway: no member addresses")
	}
	b := newBackend(cfg.Members, vclock.Or(cfg.Clock))
	srv, err := transport.NewClientGatewayWith(cfg.Listen, b, cfg.Queue)
	if err != nil {
		b.close()
		return nil, err
	}
	return &Gateway{srv: srv, b: b}, nil
}

// Addr returns the gateway's client-facing listen address.
func (g *Gateway) Addr() string { return g.srv.Addr() }

// Stats snapshots the gateway's admission counters: connections,
// in-flight requests, admitted and shed totals.
func (g *Gateway) Stats() transport.ClientStats { return g.srv.Stats() }

// Register publishes the gateway's client-tier admission counters on
// reg (the dagmutex_client_* families; see internal/transport). Serve
// reg over HTTP with telemetry.Serve.
func (g *Gateway) Register(reg *telemetry.Registry) { g.srv.Register(reg) }

// Close stops the listener, severs every client connection (releasing
// the holds they owned upstream), then hangs up the member connections.
func (g *Gateway) Close() error {
	g.srv.Close()
	g.b.close()
	return nil
}

// upstream is one member connection, dialed on first use and redialed
// after failures under a jittered exponential backoff. The mutex
// serializes dialing, not requests: a healthy connection is handed out
// immediately and used concurrently.
type upstream struct {
	addr string
	clk  vclock.Clock // never nil; quarantine deadlines only

	mu        sync.Mutex
	conn      *client.Conn
	closed    bool
	failures  int       // consecutive failed dials since the last success
	notBefore time.Time // quarantine deadline; no redial attempt before it
}

// get returns a healthy connection to this member, dialing (bounded by
// ctx and dialTimeout) if the previous one died. The dial itself is the
// health check — it includes the client-protocol handshake — so a
// success ends the member's quarantine, while a failure extends it
// exponentially; during a quarantine get fails fast without touching
// the network, and the failover walk moves on to the next member.
func (u *upstream) get(ctx context.Context) (*client.Conn, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return nil, errors.New("gateway: closed")
	}
	if u.conn != nil && u.conn.Err() == nil {
		return u.conn, nil
	}
	if u.conn != nil {
		_ = u.conn.Close()
		u.conn = nil
	}
	if wait := u.clk.Until(u.notBefore); wait > 0 {
		return nil, fmt.Errorf("gateway: member %s backing off after %d failed dials (next attempt in %s)",
			u.addr, u.failures, wait.Round(time.Millisecond))
	}
	dctx, cancel := context.WithTimeout(ctx, dialTimeout)
	defer cancel()
	c, err := client.DialContext(dctx, u.addr)
	if err != nil {
		u.failures++
		u.notBefore = u.clk.Now().Add(backoffDelay(u.failures, rand.Float64))
		return nil, err
	}
	u.failures, u.notBefore = 0, time.Time{}
	u.conn = c
	return c, nil
}

// backend implements transport.ClientBackend over the upstream set.
type backend struct {
	ups []*upstream

	// holds remembers grants that failover placed on a member other
	// than the resource's routed one (resource -> fence -> upstream
	// index), so their release finds the granting member. Grants on the
	// routed member are not recorded — the hash re-derives them — so
	// the map stays empty in the steady state.
	mu    sync.Mutex
	holds map[string]map[uint64]int
}

func newBackend(members []string, clk vclock.Clock) *backend {
	b := &backend{ups: make([]*upstream, len(members)), holds: make(map[string]map[uint64]int)}
	for i, addr := range members {
		b.ups[i] = &upstream{addr: addr, clk: clk}
	}
	return b
}

func (b *backend) close() {
	for _, u := range b.ups {
		u.mu.Lock()
		u.closed = true
		if u.conn != nil {
			_ = u.conn.Close()
			u.conn = nil
		}
		u.mu.Unlock()
	}
}

// route picks resource's home member: FNV-1a over the name, mod the
// member count. Stable, so releases and repeat acquires of the same
// resource reach the same member and coalesce there.
func (b *backend) route(resource string) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(resource); i++ {
		h = (h ^ uint32(resource[i])) * prime32
	}
	return int(h % uint32(len(b.ups)))
}

// record remembers a grant that landed off its routed member.
func (b *backend) record(resource string, fence uint64, idx int) {
	if idx == b.route(resource) {
		return
	}
	b.mu.Lock()
	m := b.holds[resource]
	if m == nil {
		m = make(map[uint64]int)
		b.holds[resource] = m
	}
	m[fence] = idx
	b.mu.Unlock()
}

// take looks up (and forgets) where a fence's grant lives, reporting
// false when it was on the routed member all along.
func (b *backend) take(resource string, fence uint64) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m, ok := b.holds[resource]
	if !ok {
		return 0, false
	}
	idx, ok := m[fence]
	if ok {
		delete(m, fence)
		if len(m) == 0 {
			delete(b.holds, resource)
		}
	}
	return idx, ok
}

// failedOver reports whether an upstream error means "try the next
// member" rather than "answer the client": the connection died under
// the request, or the member's own session is down.
func failedOver(conn *client.Conn, err error) bool {
	return conn.Err() != nil || errors.Is(err, client.ErrClosed) || errors.Is(err, runtime.ErrNodeDown)
}

// Acquire implements transport.ClientBackend: route, then walk the
// member ring until one answers.
func (b *backend) Acquire(ctx context.Context, resource string) (uint64, time.Time, error) {
	start := b.route(resource)
	var lastErr error
	for i := 0; i < len(b.ups); i++ {
		idx := (start + i) % len(b.ups)
		conn, err := b.ups[idx].get(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return 0, time.Time{}, recode(err)
			}
			lastErr = err
			continue
		}
		h, err := conn.Acquire(ctx, resource)
		if err != nil {
			if ctx.Err() == nil && failedOver(conn, err) {
				lastErr = err
				continue
			}
			return 0, time.Time{}, recode(err)
		}
		b.record(resource, h.Fence, idx)
		return h.Fence, h.Expires, nil
	}
	return 0, time.Time{}, recode(fmt.Errorf("gateway: no member reachable for %q: %w", resource, lastErr))
}

// TryAcquire implements transport.ClientBackend with the same failover
// walk; "would wait" is answered by the routed member, not retried.
func (b *backend) TryAcquire(resource string) (uint64, time.Time, bool, error) {
	start := b.route(resource)
	var lastErr error
	for i := 0; i < len(b.ups); i++ {
		idx := (start + i) % len(b.ups)
		conn, err := b.ups[idx].get(context.Background())
		if err != nil {
			lastErr = err
			continue
		}
		h, ok, err := conn.TryAcquire(resource)
		if err != nil {
			if failedOver(conn, err) {
				lastErr = err
				continue
			}
			return 0, time.Time{}, false, recode(err)
		}
		if !ok {
			return 0, time.Time{}, false, nil
		}
		b.record(resource, h.Fence, idx)
		return h.Fence, h.Expires, true, nil
	}
	return 0, time.Time{}, false, recode(fmt.Errorf("gateway: no member reachable for %q: %w", resource, lastErr))
}

// Release implements transport.ClientBackend: the fence's recorded
// member if failover moved the grant, the routed member otherwise.
func (b *backend) Release(resource string, fence uint64) error {
	idx, ok := b.take(resource, fence)
	if !ok {
		idx = b.route(resource)
	}
	conn, err := b.ups[idx].get(context.Background())
	if err != nil {
		return recode(err)
	}
	if fence == 0 {
		return recode(conn.Release(resource))
	}
	return recode(conn.ReleaseHold(client.Hold{Resource: resource, Fence: fence}))
}

// recode re-tags upstream sentinels with their wire codes for the trip
// back to the dialed client. The runtime and context sentinels pass
// through untouched — the transport encoder knows those — but the lock
// service's sentinels and the upstream's busy signal need explicit
// codes, exactly as the lock service's own backend tags them.
func recode(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, lockservice.ErrNotHeld):
		return &transport.CodedError{Code: transport.CodeNotHeld, Err: err}
	case errors.Is(err, lockservice.ErrLeaseExpired):
		return &transport.CodedError{Code: transport.CodeLeaseExpired, Err: err}
	case errors.Is(err, client.ErrBusy):
		return &transport.CodedError{Code: transport.CodeBusy, Err: err}
	default:
		return err
	}
}
