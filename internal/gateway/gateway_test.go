package gateway

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dagmutex/internal/client"
	"dagmutex/internal/core"
	"dagmutex/internal/failure"
	"dagmutex/internal/lockservice"
	"dagmutex/internal/mutex"
	"dagmutex/internal/topology"
	"dagmutex/internal/transport"
	"dagmutex/internal/vclock"
)

// gatewayCluster starts a 3-member TCP cluster (failure detection
// armed when chaos is set) and a gateway fronting all three members.
func gatewayCluster(t *testing.T, chaos bool, q transport.ClientQueue) (*Gateway, *transport.TCPCluster, []string) {
	t.Helper()
	tree := topology.Star(3)
	cfg := mutex.Config{IDs: tree.IDs(), Holder: 1, Parent: tree.ParentsToward(1)}
	var c *transport.TCPCluster
	var err error
	if chaos {
		fcfg := failure.Config{Heartbeat: 10 * time.Millisecond, SuspectAfter: 120 * time.Millisecond}
		c, err = transport.NewTCPClusterChaos(core.Builder, cfg, transport.DAGCodec{}, fcfg, failure.NewInjector())
	} else {
		c, err = transport.NewTCPCluster(core.Builder, cfg, transport.DAGCodec{})
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	members := make([]string, 0, 3)
	for id := mutex.ID(1); id <= 3; id++ {
		members = append(members, c.Addr(id))
	}
	g, err := New(Config{Members: members, Queue: q})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close() })
	return g, c, members
}

// TestGatewaySerializesClients drives several dialed clients through
// one gateway: mutual exclusion and strictly monotonic fences must
// hold, exactly as when dialing a member directly.
func TestGatewaySerializesClients(t *testing.T) {
	g, _, _ := gatewayCluster(t, false, transport.ClientQueue{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var inCS atomic.Int64
	var lastFence uint64 // written only inside the CS
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := client.DialContext(ctx, g.Addr())
			if err != nil {
				t.Errorf("dial gateway: %v", err)
				return
			}
			defer conn.Close()
			for j := 0; j < 10; j++ {
				h, err := conn.Acquire(ctx, "")
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if got := inCS.Add(1); got != 1 {
					t.Errorf("%d clients in CS", got)
				}
				if h.Fence <= lastFence {
					t.Errorf("fence %d not above %d", h.Fence, lastFence)
				}
				lastFence = h.Fence
				inCS.Add(-1)
				if err := conn.ReleaseHold(h); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := g.Stats(); s.Admitted == 0 {
		t.Fatalf("gateway admitted no requests: %+v", s)
	}
}

// TestGatewaySentinels pins the error mapping end to end through the
// gateway: a release of nothing comes back as the not-held sentinel,
// exactly as when dialing a member directly.
func TestGatewaySentinels(t *testing.T) {
	g, _, _ := gatewayCluster(t, false, transport.ClientQueue{})
	conn, err := client.Dial(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	err = conn.ReleaseHold(client.Hold{Fence: 999})
	if err == nil {
		t.Fatal("release of nothing through gateway succeeded")
	}
	// The member answers CodeNotHeld; the gateway must re-tag it so its
	// own clients decode the same sentinel.
	if !errors.Is(err, lockservice.ErrNotHeld) {
		t.Fatalf("release of nothing = %v, want ErrNotHeld", err)
	}
}

// TestGatewayShedsOverRate pins edge admission: with a tiny rate
// bucket, a burst of acquires is shed at the gateway with ErrBusy
// before any upstream traffic, and the shed counter records it.
func TestGatewayShedsOverRate(t *testing.T) {
	g, _, _ := gatewayCluster(t, false, transport.ClientQueue{Rate: 0.001, Burst: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	conn, err := client.DialContext(ctx, g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The single burst token admits one acquire; the rest must shed.
	h, err := conn.Acquire(ctx, "")
	if err != nil {
		t.Fatalf("first acquire (burst token): %v", err)
	}
	var shed int
	for i := 0; i < 5; i++ {
		if _, err := conn.Acquire(ctx, ""); errors.Is(err, client.ErrBusy) {
			shed++
		} else if err == nil {
			t.Fatal("acquire admitted over an exhausted rate bucket")
		} else {
			t.Fatalf("acquire = %v, want ErrBusy", err)
		}
	}
	if shed != 5 {
		t.Fatalf("shed %d of 5 over-rate acquires", shed)
	}
	if s := g.Stats(); s.ShedRate < 5 {
		t.Fatalf("stats recorded %d rate sheds, want >= 5: %+v", s.ShedRate, s)
	}
	if err := conn.ReleaseHold(h); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayFailsOverOnMemberKill is the gateway soak: clients keep
// acquiring through the gateway while the member their requests route
// to is killed. The gateway walks to the next member; the armed
// failure subsystem regenerates the token if it died with the victim.
func TestGatewayFailsOverOnMemberKill(t *testing.T) {
	if testing.Short() {
		t.Skip("member-kill soak is slow under -short")
	}
	g, c, _ := gatewayCluster(t, true, transport.ClientQueue{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	conn, err := client.DialContext(ctx, g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	cycle := func() error {
		h, err := conn.Acquire(ctx, "")
		if err != nil {
			return err
		}
		return conn.ReleaseHold(h)
	}
	if err := cycle(); err != nil {
		t.Fatalf("pre-kill acquire: %v", err)
	}

	// Resource "" routes to members[route("")]; kill exactly that
	// member, so the walk-on is actually exercised (ids are 1-based).
	routed := (&backend{ups: make([]*upstream, 3)}).route("")
	if err := c.Kill(mutex.ID(routed + 1)); err != nil {
		t.Fatal(err)
	}

	// The in-flight epoch may eat a few attempts while the survivors
	// excise the victim and regenerate; the gateway must converge to
	// serving again without the client reconnecting.
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := cycle()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway did not recover from member kill: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		if err := cycle(); err != nil {
			t.Fatalf("post-recovery acquire %d: %v", i, err)
		}
	}
}

// TestBackoffDelay pins the reconnect-quarantine schedule: exponential
// doubling from backoffBase, saturation at backoffCap, and jitter
// confined to the upper half of the interval.
func TestBackoffDelay(t *testing.T) {
	zero := func() float64 { return 0 }
	almostOne := func() float64 { return 0.999999 }
	for _, tc := range []struct {
		n    int
		full time.Duration
	}{
		{1, 50 * time.Millisecond},
		{2, 100 * time.Millisecond},
		{3, 200 * time.Millisecond},
		{6, 1600 * time.Millisecond},
		{7, backoffCap},  // 3200ms capped
		{10, backoffCap}, // past the shift guard
		{50, backoffCap}, // a shift here would overflow; the guard must hold
	} {
		if got, want := backoffDelay(tc.n, zero), tc.full/2; got != want {
			t.Errorf("backoffDelay(%d, 0) = %v, want %v", tc.n, got, want)
		}
		if got := backoffDelay(tc.n, almostOne); got < tc.full/2 || got >= tc.full {
			t.Errorf("backoffDelay(%d, ~1) = %v, want in [%v, %v)", tc.n, got, tc.full/2, tc.full)
		}
	}
}

// TestUpstreamQuarantineFailsFast checks the reconnect state machine on
// a member that refuses connections: the first get pays a real dial,
// the second fails fast on the quarantine without touching the network,
// and once the quarantine lapses the dial is retried (and the backoff
// doubles). A successful dial must clear the state entirely.
func TestUpstreamQuarantineFailsFast(t *testing.T) {
	// A listener opened then closed yields a loopback port that refuses
	// connections immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	u := &upstream{addr: addr, clk: vclock.System()}
	ctx := context.Background()
	if _, err := u.get(ctx); err == nil {
		t.Fatal("get on refused port succeeded")
	}
	if u.failures != 1 || u.notBefore.IsZero() {
		t.Fatalf("after first failure: failures=%d notBefore=%v", u.failures, u.notBefore)
	}

	// Inside the quarantine: fail fast, no dial, failure count frozen.
	start := time.Now()
	_, err = u.get(ctx)
	if err == nil || !strings.Contains(err.Error(), "backing off") {
		t.Fatalf("quarantined get: err = %v, want backing-off error", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("quarantined get took %v, want fail-fast", elapsed)
	}
	if u.failures != 1 {
		t.Errorf("quarantined get bumped failures to %d", u.failures)
	}

	// After the quarantine lapses the dial is retried and the backoff
	// grows.
	u.mu.Lock()
	u.notBefore = time.Now().Add(-time.Millisecond)
	u.mu.Unlock()
	if _, err := u.get(ctx); err == nil || strings.Contains(err.Error(), "backing off") {
		t.Fatalf("post-quarantine get: err = %v, want a fresh dial error", err)
	}
	if u.failures != 2 {
		t.Errorf("after second failure: failures = %d, want 2", u.failures)
	}

	// A member that comes back clears the quarantine on the next
	// allowed dial.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go func() {
		for {
			conn, err := ln2.Accept()
			if err != nil {
				return
			}
			// Absorb the handshake; enough for DialContext to succeed.
			go func() { _, _ = io.Copy(io.Discard, conn) }()
		}
	}()
	u2 := &upstream{addr: addr, clk: vclock.System(), failures: 3, notBefore: time.Now().Add(-time.Millisecond)}
	u2.addr = ln2.Addr().String()
	if _, err := u2.get(ctx); err != nil {
		t.Fatalf("get on live listener: %v", err)
	}
	if u2.failures != 0 || !u2.notBefore.IsZero() {
		t.Errorf("success did not reset quarantine: failures=%d notBefore=%v", u2.failures, u2.notBefore)
	}
	u2.mu.Lock()
	if u2.conn != nil {
		_ = u2.conn.Close()
	}
	u2.mu.Unlock()
}
