package trace

import (
	"strings"
	"testing"

	"dagmutex/internal/cluster"
	"dagmutex/internal/core"
	"dagmutex/internal/mutex"
	"dagmutex/internal/sim"
	"dagmutex/internal/telemetry"
	"dagmutex/internal/topology"
)

func TestLogCapturesRunEvents(t *testing.T) {
	tree := topology.Line(3)
	cfg := mutex.Config{IDs: tree.IDs(), Holder: 3, Parent: tree.ParentsToward(3)}
	l := NewLog()
	c, err := cluster.New(core.Builder, cfg,
		cluster.WithNetworkOptions(sim.WithObserver(Observer(l))))
	if err != nil {
		t.Fatal(err)
	}
	Attach(l, c)
	c.RequestAt(0, 1)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"REQUEST", "PRIVILEGE", "ENTER", "EXIT", "origin 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if len(l.Events()) < 4 {
		t.Fatalf("too few events: %d", len(l.Events()))
	}
}

// TestLogRecordsLiveTraceStream wires the runtime's structured trace
// observer into a simulation log: the simulated run's lines must come
// out in the exact live-telemetry vocabulary (REQUEST/PRIVILEGE/GRANT
// with origin= and fence=), time-stamped by the simulator clock.
func TestLogRecordsLiveTraceStream(t *testing.T) {
	tree := topology.Line(3)
	cfg := mutex.Config{IDs: tree.IDs(), Holder: 3, Parent: tree.ParentsToward(3)}
	l := NewLog()
	var c *cluster.Cluster
	builder := func(id mutex.ID, env mutex.Env, mc mutex.Config) (mutex.Node, error) {
		return core.New(id, env, mc, core.WithTraceObserver(func(e telemetry.TraceEvent) {
			l.AddEvent(c.Scheduler().Now(), e)
		}))
	}
	c, err := cluster.New(builder, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 1)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := l.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"node 1 REQUEST -> 2 origin=1",
		"node 2 FORWARD -> 3 origin=1 hops=1",
		"node 3 PRIVILEGE -> 1 origin=1 hops=2",
		"node 1 GRANT origin=1 fence=1 hops=2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("live-vocabulary trace missing %q:\n%s", want, out)
		}
	}
}

func TestStateTableMatchesThesisLayout(t *testing.T) {
	snaps := []core.Snapshot{
		{ID: 1, Next: 2, Follow: 5},
		{ID: 2, Next: 5, Follow: 1},
		{ID: 3, Next: 2, Follow: 2},
		{ID: 4, Next: 3},
		{ID: 5},
		{ID: 6, Next: 4},
	}
	got := StateTable(snaps)
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), got)
	}
	if !strings.HasPrefix(lines[0], "I") ||
		!strings.HasPrefix(lines[1], "HOLDING_I") ||
		!strings.HasPrefix(lines[2], "NEXT_I") ||
		!strings.HasPrefix(lines[3], "FOLLOW_I") {
		t.Fatalf("unexpected rows:\n%s", got)
	}
	// Node 5's NEXT is 0 and renders blank, like the thesis tables.
	if strings.Contains(lines[2], "0") {
		t.Fatalf("nil NEXT should render blank:\n%s", got)
	}
	if !strings.Contains(lines[3], "5") {
		t.Fatalf("FOLLOW_1 = 5 missing:\n%s", got)
	}
}

func TestHoldingRendersTrueFlag(t *testing.T) {
	got := StateTable([]core.Snapshot{{ID: 1, Holding: true}, {ID: 2, Next: 1}})
	lines := strings.Split(got, "\n")
	if !strings.Contains(lines[1], "t") || strings.Count(lines[1], "f") != 1 {
		t.Fatalf("HOLDING row wrong:\n%s", got)
	}
}
