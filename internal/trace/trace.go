// Package trace renders simulation runs for humans: a time-ordered event
// log (sends, deliveries, grants, releases) and the thesis-style variable
// tables that Figures 6a-6k print.
package trace

import (
	"fmt"
	"io"
	"strings"

	"dagmutex/internal/cluster"
	"dagmutex/internal/core"
	"dagmutex/internal/mutex"
	"dagmutex/internal/sim"
	"dagmutex/internal/telemetry"
)

// Event is one line of a run trace.
type Event struct {
	At   sim.Time
	Text string
}

// Log accumulates events; safe for single-threaded simulator use only.
type Log struct {
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Addf appends a formatted event at time t.
func (l *Log) Addf(t sim.Time, format string, args ...any) {
	l.events = append(l.events, Event{At: t, Text: fmt.Sprintf(format, args...)})
}

// AddEvent appends a structured trace event at time t, rendered in the
// shared telemetry vocabulary: a simulation log and a live
// WithTraceObserver stream print identical lines, so the offline
// tooling reads both. Attach it to simulated nodes with
// core.WithTraceObserver and a closure over the simulator clock.
func (l *Log) AddEvent(t sim.Time, e telemetry.TraceEvent) {
	l.Addf(t, "%s", e)
}

// Events returns the recorded events in insertion order (which is time
// order, since the simulator fires events chronologically).
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// WriteTo renders the log, one "t=… message" line per event.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range l.events {
		n, err := fmt.Fprintf(w, "t=%-8d %s\n", e.At, e.Text)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Attach wires a log to a cluster: every network delivery, grant and
// release is recorded. Call before the run starts.
func Attach(l *Log, c *cluster.Cluster) {
	c.OnGrant(func(g cluster.Grant) {
		l.Addf(g.GrantAt, "ENTER  node %d enters its critical section (requested at t=%d)", g.Node, g.ReqAt)
	})
	c.OnRelease(func(id mutex.ID, at sim.Time) {
		l.Addf(at, "EXIT   node %d leaves its critical section", id)
	})
}

// Observer returns a sim.Network observer that records deliveries into l.
// Pass it via cluster.WithNetworkOptions(sim.WithObserver(...)).
func Observer(l *Log) func(sim.Delivery) {
	return func(d sim.Delivery) {
		l.Addf(d.DeliverAt, "RECV   %-9s %d -> %d%s (sent t=%d)",
			d.Msg.Kind(), d.From, d.To, describe(d.Msg), d.SentAt)
	}
}

func describe(m mutex.Message) string {
	if r, ok := m.(core.Request); ok {
		return fmt.Sprintf(" [origin %d]", r.Origin)
	}
	return ""
}

// StateTable renders a set of DAG-node snapshots as the thesis prints its
// Figure 6 tables: one column per node, rows HOLDING / NEXT / FOLLOW.
// FOLLOW and NEXT render 0 as blank, matching the thesis's typography.
func StateTable(snaps []core.Snapshot) string {
	var b strings.Builder
	b.WriteString("I        ")
	for _, s := range snaps {
		fmt.Fprintf(&b, "%4d", s.ID)
	}
	b.WriteString("\nHOLDING_I")
	for _, s := range snaps {
		v := "f"
		if s.Holding {
			v = "t"
		}
		fmt.Fprintf(&b, "%4s", v)
	}
	b.WriteString("\nNEXT_I   ")
	for _, s := range snaps {
		fmt.Fprintf(&b, "%4s", idCell(s.Next))
	}
	b.WriteString("\nFOLLOW_I ")
	for _, s := range snaps {
		fmt.Fprintf(&b, "%4s", idCell(s.Follow))
	}
	b.WriteString("\n")
	return b.String()
}

func idCell(id mutex.ID) string {
	if id == mutex.Nil {
		return ""
	}
	return fmt.Sprintf("%d", id)
}
