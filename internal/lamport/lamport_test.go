package lamport

import (
	"errors"
	"testing"

	"dagmutex/internal/cluster"
	"dagmutex/internal/conformance"
	"dagmutex/internal/mutex"
	"dagmutex/internal/sim"
)

func config(n int, holder mutex.ID) mutex.Config {
	ids := make([]mutex.ID, n)
	for i := range ids {
		ids[i] = mutex.ID(i + 1)
	}
	return mutex.Config{IDs: ids, Holder: holder}
}

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Factory{Name: "lamport", Builder: Builder, Config: config})
}

func TestEntryCostsThreeNMinusOne(t *testing.T) {
	// §2.1: N−1 REQUESTs, N−1 ACKNOWLEDGEs, N−1 RELEASEs.
	for _, n := range []int{2, 4, 8} {
		c, err := cluster.New(Builder, config(n, 1))
		if err != nil {
			t.Fatal(err)
		}
		c.RequestAt(0, 2)
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		counts := c.Counts()
		if want := int64(3 * (n - 1)); counts.Messages != want {
			t.Fatalf("n=%d: messages = %d, want %d", n, counts.Messages, want)
		}
		for _, kind := range []string{"REQUEST", "ACKNOWLEDGE", "RELEASE"} {
			if counts.ByKind[kind] != int64(n-1) {
				t.Fatalf("n=%d: %s = %d, want %d", n, kind, counts.ByKind[kind], n-1)
			}
		}
	}
}

func TestTotalOrderRespectedUnderContention(t *testing.T) {
	c, err := cluster.New(Builder, config(5, 1), cluster.WithCSTime(sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	// Simultaneous requests: stamps tie on sequence, so ids break ties.
	c.RequestAt(0, 4)
	c.RequestAt(0, 2)
	c.RequestAt(0, 5)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	order := c.GrantOrder()
	want := []mutex.ID{2, 4, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestQueueReplicasConvergeAtQuiescence(t *testing.T) {
	c, err := cluster.New(Builder, config(4, 1), cluster.WithCSTime(sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range c.IDs() {
		c.RequestAt(sim.Time(i)*2*sim.Hop, id)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range c.IDs() {
		n := c.Node(id).(*Node)
		if len(n.queue) != 0 {
			t.Fatalf("node %d queue not drained: %v", id, n.queue)
		}
	}
}

func TestClockMonotonicity(t *testing.T) {
	c, err := cluster.New(Builder, config(3, 1), cluster.WithCSTime(sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[mutex.ID]uint64)
	for round := 0; round < 4; round++ {
		for i, id := range c.IDs() {
			c.RequestAt(c.Scheduler().Now()+sim.Time(i+1)*3*sim.Hop, id)
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		for _, id := range c.IDs() {
			n := c.Node(id).(*Node)
			if now := n.clock.Now(); now < last[id] {
				t.Fatalf("node %d clock went backwards: %d -> %d", id, last[id], now)
			} else {
				last[id] = now
			}
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	env := nopEnv{}
	n, err := New(1, env, config(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Release(); !errors.Is(err, mutex.ErrNotInCS) {
		t.Fatalf("Release = %v", err)
	}
	if err := n.Deliver(2, bogus{}); !errors.Is(err, mutex.ErrUnexpectedMessage) {
		t.Fatalf("bogus = %v", err)
	}
	if err := n.Request(); err != nil {
		t.Fatal(err)
	}
	if err := n.Request(); !errors.Is(err, mutex.ErrOutstanding) {
		t.Fatalf("double request = %v", err)
	}
}

type nopEnv struct{}

func (nopEnv) Send(mutex.ID, mutex.Message) {}
func (nopEnv) Granted(uint64)               {}

type bogus struct{}

func (bogus) Kind() string { return "BOGUS" }
func (bogus) Size() int    { return 0 }
