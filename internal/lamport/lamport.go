// Package lamport implements Lamport's distributed mutual-exclusion
// algorithm (CACM 1978), the thesis's §2.1 baseline and the ancestor of
// the assertion-based family.
//
// Every node keeps a logical clock and a replica of the global request
// queue, totally ordered by (sequence, id). A requester broadcasts
// REQUEST; receivers enqueue it and ACKNOWLEDGE. A node enters its
// critical section when its own request heads its queue copy and it has
// witnessed a later-stamped message from every other site. RELEASE is
// broadcast on exit.
//
// Cost (thesis §2.1): 3(N−1) messages per entry — (N−1) of each kind.
package lamport

import (
	"fmt"
	"sort"

	"dagmutex/internal/lclock"
	"dagmutex/internal/mutex"
)

// request is a stamped critical-section request.
type request struct {
	Stamp lclock.Stamp
}

// Kind implements mutex.Message.
func (request) Kind() string { return "REQUEST" }

// Size implements mutex.Message.
func (request) Size() int { return 2 * mutex.IntSize }

// ack acknowledges a request, carrying the replier's clock.
type ack struct {
	Clock uint64
}

// Kind implements mutex.Message.
func (ack) Kind() string { return "ACKNOWLEDGE" }

// Size implements mutex.Message.
func (ack) Size() int { return mutex.IntSize }

// release removes the sender's request from every queue replica.
type release struct {
	Clock uint64
}

// Kind implements mutex.Message.
func (release) Kind() string { return "RELEASE" }

// Size implements mutex.Message.
func (release) Size() int { return mutex.IntSize }

// Node is one Lamport site.
type Node struct {
	id  mutex.ID
	ids []mutex.ID
	env mutex.Env

	clock lclock.Clock
	queue []lclock.Stamp // sorted replica of the request queue
	// latest[j] is the stamp of the most recent message witnessed from j;
	// entry requires latest[j] > mine for all j.
	latest map[mutex.ID]uint64

	mine       lclock.Stamp
	requesting bool
	inCS       bool
}

var _ mutex.Node = (*Node)(nil)

// New constructs a node; cfg.Holder is ignored (no token exists).
func New(id mutex.ID, env mutex.Env, cfg mutex.Config) (*Node, error) {
	if err := mutex.ValidateIDs(cfg.IDs, id); err != nil {
		return nil, err
	}
	return &Node{
		id:     id,
		ids:    append([]mutex.ID(nil), cfg.IDs...),
		env:    env,
		latest: make(map[mutex.ID]uint64, len(cfg.IDs)),
	}, nil
}

// Builder adapts New to the mutex.Builder signature.
func Builder(id mutex.ID, env mutex.Env, cfg mutex.Config) (mutex.Node, error) {
	return New(id, env, cfg)
}

// ID implements mutex.Node.
func (n *Node) ID() mutex.ID { return n.id }

// Request implements mutex.Node: stamp, enqueue locally, broadcast.
func (n *Node) Request() error {
	if n.requesting || n.inCS {
		return mutex.ErrOutstanding
	}
	n.requesting = true
	n.mine = lclock.Stamp{Seq: n.clock.Tick(), Node: n.id}
	n.enqueue(n.mine)
	for _, j := range n.ids {
		if j != n.id {
			n.env.Send(j, request{Stamp: n.mine})
		}
	}
	n.tryEnter()
	return nil
}

// Release implements mutex.Node: dequeue own request and broadcast RELEASE.
func (n *Node) Release() error {
	if !n.inCS {
		return mutex.ErrNotInCS
	}
	n.inCS = false
	n.dequeue(n.mine)
	n.mine = lclock.Stamp{}
	c := n.clock.Tick()
	for _, j := range n.ids {
		if j != n.id {
			n.env.Send(j, release{Clock: c})
		}
	}
	return nil
}

// Deliver implements mutex.Node.
func (n *Node) Deliver(from mutex.ID, m mutex.Message) error {
	switch msg := m.(type) {
	case request:
		n.clock.Witness(msg.Stamp.Seq)
		n.witness(from, msg.Stamp.Seq)
		n.enqueue(msg.Stamp)
		n.env.Send(from, ack{Clock: n.clock.Tick()})
	case ack:
		n.clock.Witness(msg.Clock)
		n.witness(from, msg.Clock)
	case release:
		n.clock.Witness(msg.Clock)
		n.witness(from, msg.Clock)
		n.dequeueNode(from)
	default:
		return fmt.Errorf("%w: %T", mutex.ErrUnexpectedMessage, m)
	}
	n.tryEnter()
	return nil
}

func (n *Node) witness(from mutex.ID, c uint64) {
	if c > n.latest[from] {
		n.latest[from] = c
	}
}

func (n *Node) enqueue(s lclock.Stamp) {
	i := sort.Search(len(n.queue), func(i int) bool { return s.Less(n.queue[i]) })
	n.queue = append(n.queue, lclock.Stamp{})
	copy(n.queue[i+1:], n.queue[i:])
	n.queue[i] = s
}

func (n *Node) dequeue(s lclock.Stamp) {
	for i, q := range n.queue {
		if q == s {
			n.queue = append(n.queue[:i], n.queue[i+1:]...)
			return
		}
	}
}

// dequeueNode removes from's request; each node has at most one queued.
func (n *Node) dequeueNode(from mutex.ID) {
	for i, q := range n.queue {
		if q.Node == from {
			n.queue = append(n.queue[:i], n.queue[i+1:]...)
			return
		}
	}
}

// tryEnter checks Lamport's assertion: own request heads the queue and a
// later message has been witnessed from every other node.
func (n *Node) tryEnter() {
	if !n.requesting || len(n.queue) == 0 || n.queue[0] != n.mine {
		return
	}
	for _, j := range n.ids {
		if j != n.id && n.latest[j] <= n.mine.Seq {
			return
		}
	}
	n.requesting = false
	n.inCS = true
	n.env.Granted(0)
}

// Storage implements mutex.Node: the replicated queue (up to N entries)
// plus the N-entry witness vector — the overhead §6.4 contrasts with the
// DAG algorithm's three scalars.
func (n *Node) Storage() mutex.Storage {
	return mutex.Storage{
		Scalars:      2,
		ArrayEntries: len(n.latest),
		QueueEntries: len(n.queue),
		Bytes:        2*mutex.IntSize + len(n.latest)*mutex.IntSize + len(n.queue)*2*mutex.IntSize,
	}
}
