// Package central implements the classical centralized mutual-exclusion
// scheme the thesis compares against in Chapter 6: one coordinator node
// keeps an explicit FIFO queue; everyone else exchanges REQUEST / GRANT /
// RELEASE messages with it.
//
// Costs (thesis §6):
//   - messages per entry: 3 for a non-coordinator (REQUEST, GRANT,
//     RELEASE), 0 for the coordinator itself — averaging 3 − 3/N;
//   - synchronization delay: 2 (RELEASE to the coordinator, then GRANT to
//     the next requester), against the DAG algorithm's 1.
package central

import (
	"fmt"

	"dagmutex/internal/mutex"
)

// request asks the coordinator for the critical section.
type request struct{}

// Kind implements mutex.Message.
func (request) Kind() string { return "REQUEST" }

// Size implements mutex.Message: the requester is the transport sender.
func (request) Size() int { return mutex.IntSize }

// grant gives the critical section to a requester.
type grant struct{}

// Kind implements mutex.Message.
func (grant) Kind() string { return "GRANT" }

// Size implements mutex.Message.
func (grant) Size() int { return 0 }

// release returns the critical section to the coordinator.
type release struct{}

// Kind implements mutex.Message.
func (release) Kind() string { return "RELEASE" }

// Size implements mutex.Message.
func (release) Size() int { return 0 }

// Node is one site of the centralized scheme. The node whose ID equals the
// configured coordinator additionally runs the coordinator role.
type Node struct {
	id    mutex.ID
	coord mutex.ID
	env   mutex.Env

	// Requester state.
	requesting bool
	inCS       bool

	// Coordinator state (used only when id == coord).
	busy  bool
	queue []mutex.ID
}

var _ mutex.Node = (*Node)(nil)

// New constructs a node. cfg.Holder designates the coordinator.
func New(id mutex.ID, env mutex.Env, cfg mutex.Config) (*Node, error) {
	if err := mutex.ValidateIDs(cfg.IDs, id); err != nil {
		return nil, err
	}
	if cfg.Holder == mutex.Nil {
		return nil, fmt.Errorf("%w: no coordinator designated", mutex.ErrBadConfig)
	}
	if err := mutex.ValidateIDs(cfg.IDs, cfg.Holder); err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	return &Node{id: id, coord: cfg.Holder, env: env}, nil
}

// Builder adapts New to the mutex.Builder signature.
func Builder(id mutex.ID, env mutex.Env, cfg mutex.Config) (mutex.Node, error) {
	return New(id, env, cfg)
}

// ID implements mutex.Node.
func (n *Node) ID() mutex.ID { return n.id }

// Request implements mutex.Node. The coordinator grants itself locally
// when free, costing zero messages.
func (n *Node) Request() error {
	if n.requesting || n.inCS {
		return mutex.ErrOutstanding
	}
	n.requesting = true
	if n.id == n.coord {
		n.admit(n.id)
		return nil
	}
	n.env.Send(n.coord, request{})
	return nil
}

// Release implements mutex.Node.
func (n *Node) Release() error {
	if !n.inCS {
		return mutex.ErrNotInCS
	}
	n.inCS = false
	if n.id == n.coord {
		n.busy = false
		n.dispatch()
		return nil
	}
	n.env.Send(n.coord, release{})
	return nil
}

// Deliver implements mutex.Node.
func (n *Node) Deliver(from mutex.ID, m mutex.Message) error {
	switch m.(type) {
	case request:
		if n.id != n.coord {
			return fmt.Errorf("%w: REQUEST at non-coordinator %d", mutex.ErrUnexpectedMessage, n.id)
		}
		n.admit(from)
		return nil
	case release:
		if n.id != n.coord {
			return fmt.Errorf("%w: RELEASE at non-coordinator %d", mutex.ErrUnexpectedMessage, n.id)
		}
		if !n.busy {
			return fmt.Errorf("%w: RELEASE while coordinator idle", mutex.ErrUnexpectedMessage)
		}
		n.busy = false
		n.dispatch()
		return nil
	case grant:
		if !n.requesting {
			return fmt.Errorf("%w: GRANT at node %d without a request", mutex.ErrUnexpectedMessage, n.id)
		}
		n.requesting = false
		n.inCS = true
		n.env.Granted(0)
		return nil
	default:
		return fmt.Errorf("%w: %T", mutex.ErrUnexpectedMessage, m)
	}
}

// admit either grants who immediately or queues it, coordinator-side.
func (n *Node) admit(who mutex.ID) {
	if n.busy {
		n.queue = append(n.queue, who)
		return
	}
	n.busy = true
	n.grantTo(who)
}

// dispatch hands the section to the head of the queue, if any.
func (n *Node) dispatch() {
	if len(n.queue) == 0 {
		return
	}
	head := n.queue[0]
	n.queue = n.queue[1:]
	n.busy = true
	n.grantTo(head)
}

func (n *Node) grantTo(who mutex.ID) {
	if who == n.id {
		n.requesting = false
		n.inCS = true
		n.env.Granted(0)
		return
	}
	n.env.Send(who, grant{})
}

// Storage implements mutex.Node. The coordinator's queue is the explicit
// structure the DAG algorithm eliminates.
func (n *Node) Storage() mutex.Storage {
	s := mutex.Storage{Scalars: 2, Bytes: 2}
	if n.id == n.coord {
		s.Scalars++ // busy flag
		s.QueueEntries = len(n.queue)
		s.Bytes += 1 + len(n.queue)*mutex.IntSize
	}
	return s
}
