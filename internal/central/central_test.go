package central

import (
	"errors"
	"testing"

	"dagmutex/internal/cluster"
	"dagmutex/internal/conformance"
	"dagmutex/internal/metrics"
	"dagmutex/internal/mutex"
	"dagmutex/internal/sim"
)

func config(n int, holder mutex.ID) mutex.Config {
	ids := make([]mutex.ID, n)
	for i := range ids {
		ids[i] = mutex.ID(i + 1)
	}
	return mutex.Config{IDs: ids, Holder: holder}
}

func TestConformance(t *testing.T) {
	conformance.Run(t, conformance.Factory{
		Name:    "central",
		Builder: Builder,
		Config:  config,
	})
}

func TestRemoteEntryCostsExactlyThreeMessages(t *testing.T) {
	// §6.1: one REQUEST, one GRANT, one RELEASE.
	c, err := cluster.New(Builder, config(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 3)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	counts := c.Counts()
	if counts.Messages != 3 {
		t.Fatalf("messages = %d, want 3", counts.Messages)
	}
	for _, kind := range []string{"REQUEST", "GRANT", "RELEASE"} {
		if counts.ByKind[kind] != 1 {
			t.Fatalf("%s count = %d, want 1", kind, counts.ByKind[kind])
		}
	}
}

func TestCoordinatorEntryIsFree(t *testing.T) {
	c, err := cluster.New(Builder, config(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 2)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Counts().Messages; got != 0 {
		t.Fatalf("messages = %d, want 0", got)
	}
}

func TestSynchronizationDelayIsTwoHops(t *testing.T) {
	// §6.3: RELEASE to the coordinator, then GRANT to the waiter.
	c, err := cluster.New(Builder, config(5, 1), cluster.WithCSTime(50*sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 2)
	c.RequestAt(sim.Hop, 3)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ds := metrics.SyncDelays(c.Grants())
	if len(ds) != 1 || ds[0] != 2 {
		t.Fatalf("sync delays = %v, want [2]", ds)
	}
}

func TestCoordinatorToWaiterDelayIsOneHop(t *testing.T) {
	// When the coordinator itself exits, only the GRANT hop remains.
	c, err := cluster.New(Builder, config(5, 1), cluster.WithCSTime(50*sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 1)
	c.RequestAt(sim.Hop, 3)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ds := metrics.SyncDelays(c.Grants())
	if len(ds) != 1 || ds[0] != 1 {
		t.Fatalf("sync delays = %v, want [1]", ds)
	}
}

func TestFIFOGrantOrder(t *testing.T) {
	c, err := cluster.New(Builder, config(6, 1), cluster.WithCSTime(20*sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	// All requests arrive while node 2's section is pending/held.
	c.RequestAt(0, 2)
	c.RequestAt(1, 5)
	c.RequestAt(2, 3)
	c.RequestAt(3, 4)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := []mutex.ID{2, 5, 3, 4}
	got := c.GrantOrder()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

func TestRejectsBadConfig(t *testing.T) {
	env := nopEnv{}
	if _, err := New(1, env, mutex.Config{IDs: []mutex.ID{1, 2}}); !errors.Is(err, mutex.ErrBadConfig) {
		t.Fatalf("missing coordinator accepted: %v", err)
	}
	if _, err := New(1, env, mutex.Config{IDs: []mutex.ID{1}, Holder: 9}); !errors.Is(err, mutex.ErrBadConfig) {
		t.Fatalf("unknown coordinator accepted: %v", err)
	}
}

type nopEnv struct{}

func (nopEnv) Send(mutex.ID, mutex.Message) {}
func (nopEnv) Granted(uint64)               {}

func TestProtocolErrors(t *testing.T) {
	env := nopEnv{}
	n, err := New(2, env, config(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Release(); !errors.Is(err, mutex.ErrNotInCS) {
		t.Fatalf("Release = %v", err)
	}
	if err := n.Deliver(1, request{}); !errors.Is(err, mutex.ErrUnexpectedMessage) {
		t.Fatalf("REQUEST at non-coordinator = %v", err)
	}
	if err := n.Deliver(1, grant{}); !errors.Is(err, mutex.ErrUnexpectedMessage) {
		t.Fatalf("GRANT without request = %v", err)
	}
	coord, err := New(1, env, config(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Deliver(2, release{}); !errors.Is(err, mutex.ErrUnexpectedMessage) {
		t.Fatalf("RELEASE while idle = %v", err)
	}
}

func TestStorageGrowsWithQueue(t *testing.T) {
	c, err := cluster.New(Builder, config(6, 1), cluster.WithCSTime(100*sim.Hop))
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 6; i++ {
		c.RequestAt(sim.Time(i), mutex.ID(i))
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := metrics.StorageFrom(c.MaxStorage())
	if r.PerNodeMax.QueueEntries < 3 {
		t.Fatalf("coordinator queue max = %d, want >= 3", r.PerNodeMax.QueueEntries)
	}
}
