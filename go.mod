module dagmutex

go 1.24
