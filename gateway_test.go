package dagmutex_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"dagmutex"
	"dagmutex/internal/topology"
)

// TestOpenGateway smoke-tests the facade end to end: a TCP cluster, a
// gateway over all its members, and a RemoteSession dialed at the
// gateway instead of a member — same Acquire/Release surface, same
// fencing, admission counters visible.
func TestOpenGateway(t *testing.T) {
	c, err := dagmutex.Open(topology.Star(3), 1, dagmutex.WithTransport(dagmutex.TCP("")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	members := []string{c.Addr(1), c.Addr(2), c.Addr(3)}
	g, err := dagmutex.OpenGateway("", members, dagmutex.WithClientQueue(16, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	s, err := dagmutex.Dial(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var last uint64
	for i := 0; i < 5; i++ {
		grant, err := s.Acquire(ctx)
		if err != nil {
			t.Fatalf("acquire %d through gateway: %v", i, err)
		}
		if grant.Generation <= last {
			t.Fatalf("fence %d not above %d", grant.Generation, last)
		}
		last = grant.Generation
		if err := s.Release(); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if st := g.Stats(); st.Admitted == 0 {
		t.Fatalf("gateway admitted nothing: %+v", st)
	}
	if err := s.Release(); !errors.Is(err, dagmutex.ErrNotHeld) {
		t.Fatalf("release of nothing = %v, want ErrNotHeld", err)
	}
}

// TestOpenGatewayRejectsEmptyMembers pins the constructor contract.
func TestOpenGatewayRejectsEmptyMembers(t *testing.T) {
	if _, err := dagmutex.OpenGateway("", nil); err == nil {
		t.Fatal("OpenGateway with no members succeeded")
	}
}
