//lint:file-ignore SA1019 the equivalence tests deliberately exercise the deprecated pre-v2 constructors against their Open spellings
package dagmutex_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dagmutex"
)

// driveCluster runs a small sequential workload over every member and
// returns the message count — the deterministic fingerprint the
// deprecated-equivalence test compares.
func driveCluster(t *testing.T, c *dagmutex.Cluster) int64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range c.Tree().IDs() {
		s := c.Session(id)
		if s == nil {
			t.Fatalf("nil session for node %d", id)
		}
		if _, err := s.Acquire(ctx); err != nil {
			t.Fatalf("node %d acquire: %v", id, err)
		}
		if err := s.Release(); err != nil {
			t.Fatalf("node %d release: %v", id, err)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return c.Messages()
}

// TestOpenOptionMatrix exercises Open across the option matrix the v2
// API composes from: substrate (local, TCP) × failure detection × INIT.
// Every combination must serve the same workload with no protocol
// error.
func TestOpenOptionMatrix(t *testing.T) {
	substrates := []struct {
		name string
		spec dagmutex.TransportSpec
	}{
		{"local", dagmutex.Local},
		{"tcp", dagmutex.TCP("")},
	}
	features := []struct {
		name string
		opts []dagmutex.Option
	}{
		{"plain", nil},
		{"chaos", []dagmutex.Option{dagmutex.WithFailureDetection(dagmutex.FailureConfig{})}},
		{"init", []dagmutex.Option{dagmutex.WithINIT()}},
		{"chaos+init", []dagmutex.Option{
			dagmutex.WithFailureDetection(dagmutex.FailureConfig{}),
			dagmutex.WithINIT(),
		}},
	}
	for _, sub := range substrates {
		for _, f := range features {
			t.Run(sub.name+"/"+f.name, func(t *testing.T) {
				t.Parallel()
				opts := append([]dagmutex.Option{dagmutex.WithTransport(sub.spec)}, f.opts...)
				c, err := dagmutex.Open(dagmutex.KAry(7, 2), 3, opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				driveCluster(t, c)
			})
		}
	}
}

// TestOpenEquivalentToDeprecatedConstructors pins the migration
// contract: every pre-v2 constructor must behave exactly like its Open
// spelling — same workload, same deterministic message count.
func TestOpenEquivalentToDeprecatedConstructors(t *testing.T) {
	tree := func() *dagmutex.Tree { return dagmutex.Star(5) }
	cases := []struct {
		name       string
		deprecated func() (*dagmutex.Cluster, error)
		v2         func() (*dagmutex.Cluster, error)
	}{
		{
			"NewCluster",
			func() (*dagmutex.Cluster, error) { return dagmutex.NewCluster(tree(), 1) },
			func() (*dagmutex.Cluster, error) { return dagmutex.Open(tree(), 1) },
		},
		{
			"NewChaosCluster",
			func() (*dagmutex.Cluster, error) {
				return dagmutex.NewChaosCluster(tree(), 1, dagmutex.FailureConfig{})
			},
			func() (*dagmutex.Cluster, error) {
				return dagmutex.Open(tree(), 1, dagmutex.WithFailureDetection(dagmutex.FailureConfig{}))
			},
		},
		{
			"NewClusterWithINIT",
			func() (*dagmutex.Cluster, error) { return dagmutex.NewClusterWithINIT(tree(), 2) },
			func() (*dagmutex.Cluster, error) { return dagmutex.Open(tree(), 2, dagmutex.WithINIT()) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dep, err := tc.deprecated()
			if err != nil {
				t.Fatal(err)
			}
			defer dep.Close()
			v2, err := tc.v2()
			if err != nil {
				t.Fatal(err)
			}
			defer v2.Close()
			if got, want := driveCluster(t, v2), driveCluster(t, dep); got != want {
				t.Fatalf("v2 messages = %d, deprecated = %d", got, want)
			}
		})
	}
}

// TestOpenTCPEquivalentToNewTCPCluster pins the TCP pair: the same
// workload completes over both spellings (frame counts are equal too —
// the wiring is identical).
func TestOpenTCPEquivalentToNewTCPCluster(t *testing.T) {
	dep, err := dagmutex.NewTCPCluster(dagmutex.Line(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	v2, err := dagmutex.Open(dagmutex.Line(3), 2, dagmutex.WithTransport(dagmutex.TCP("")))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range []dagmutex.ID{1, 2, 3} {
		for _, s := range []*dagmutex.Session{dep.Handle(id), v2.Session(id)} {
			if _, err := s.Acquire(ctx); err != nil {
				t.Fatalf("node %d: %v", id, err)
			}
			if err := s.Release(); err != nil {
				t.Fatalf("node %d: %v", id, err)
			}
		}
	}
	if err := dep.Err(); err != nil {
		t.Fatal(err)
	}
	if err := v2.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := v2.Messages(), dep.Messages(); got != want {
		t.Fatalf("v2 frames = %d, deprecated = %d", got, want)
	}
}

// TestDialRawMember is the member/client split over a plain cluster: a
// connection that is not a DAG vertex dials a member's address and
// completes Acquire→fence→Release round-trips through it.
func TestDialRawMember(t *testing.T) {
	c, err := dagmutex.Open(dagmutex.Star(3), 1, dagmutex.WithTransport(dagmutex.TCP("")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr := c.Addr(2)
	if addr == "" {
		t.Fatal("TCP member has no address")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var clients [3]*dagmutex.RemoteSession
	for i := range clients {
		s, err := dagmutex.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		clients[i] = s
	}
	var mu sync.Mutex
	inCS := 0
	var lastGen uint64
	var wg sync.WaitGroup
	for i, s := range clients {
		wg.Add(1)
		go func(i int, s *dagmutex.RemoteSession) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				g, err := s.Acquire(ctx)
				if err != nil {
					t.Errorf("client %d acquire: %v", i, err)
					return
				}
				mu.Lock()
				inCS++
				if inCS != 1 {
					t.Errorf("%d clients in CS", inCS)
				}
				if g.Generation <= lastGen {
					t.Errorf("generation %d not above %d", g.Generation, lastGen)
				}
				lastGen = g.Generation
				if g.Expires.IsZero() {
					t.Errorf("remote grant carries no lease deadline")
				}
				inCS--
				mu.Unlock()
				if err := s.Release(); err != nil {
					t.Errorf("client %d release: %v", i, err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	// And the members themselves still work alongside their clients.
	if _, err := c.Session(1).Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Session(1).Release(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenLockServiceTCPServesDialedClients wires a two-member TCP lock
// service via OpenLockService and drives it from a dialed non-member
// client.
func TestOpenLockServiceTCPServesDialedClients(t *testing.T) {
	cfg := dagmutex.LockServiceConfig{Shards: 2, Nodes: 2}
	svc1, err := dagmutex.OpenLockService(cfg, dagmutex.WithTransport(dagmutex.TCP("")), dagmutex.WithMember(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc1.Close()
	svc2, err := dagmutex.OpenLockService(cfg, dagmutex.WithTransport(dagmutex.TCP("")), dagmutex.WithMember(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	book := map[dagmutex.ID]string{1: svc1.Addr(), 2: svc2.Addr()}
	if err := svc1.Connect(book); err != nil {
		t.Fatal(err)
	}
	if err := svc2.Connect(book); err != nil {
		t.Fatal(err)
	}

	rc, err := dagmutex.DialLockService(svc1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	h, err := rc.Acquire(ctx, "account:alice")
	if err != nil {
		t.Fatal(err)
	}
	if h.Fence == 0 {
		t.Fatal("remote hold carries no fence")
	}
	if err := rc.ReleaseHold(h); err != nil {
		t.Fatal(err)
	}
	if err := rc.Release("account:alice"); !errors.Is(err, dagmutex.ErrNotHeld) {
		t.Fatalf("double release = %v, want ErrNotHeld", err)
	}
}

// TestOpenStartupContext pins the satellite fix: the INIT wait honors
// the caller's context instead of a hardcoded deadline.
func TestOpenStartupContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: Open must fail fast, not poll for 10s
	start := time.Now()
	_, err := dagmutex.Open(dagmutex.Star(4), 1, dagmutex.WithINIT(), dagmutex.WithStartupContext(ctx))
	if err == nil {
		// The flood may legitimately win the race against the canceled
		// context on a 4-node star; only a hang would be a bug.
		t.Skip("INIT flood completed before the canceled context was observed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled startup took %v", elapsed)
	}
}

// TestOpenOptionValidation pins the loud failures for option
// combinations that cannot work.
func TestOpenOptionValidation(t *testing.T) {
	if _, err := dagmutex.OpenPeer(dagmutex.Star(3), 1, 2, dagmutex.WithINIT()); err == nil ||
		!strings.Contains(err.Error(), "WithINIT") {
		t.Fatalf("OpenPeer(WithINIT) = %v, want a WithINIT error", err)
	}
	if _, err := dagmutex.OpenLockService(dagmutex.LockServiceConfig{},
		dagmutex.WithTransport(dagmutex.TCP(""))); err == nil ||
		!strings.Contains(err.Error(), "WithMember") {
		t.Fatalf("OpenLockService(TCP) without member = %v, want a WithMember error", err)
	}
	if _, err := dagmutex.OpenLockService(dagmutex.LockServiceConfig{},
		dagmutex.WithMember(1)); err == nil ||
		!strings.Contains(err.Error(), "WithMember") {
		t.Fatalf("OpenLockService(local, WithMember) = %v, want a WithMember error", err)
	}
}

// TestOpenPeerEquivalentToNewTCPPeer drives a three-peer cluster built
// with the v2 entry point exactly as the deprecated smoke test does.
func TestOpenPeerEquivalentToNewTCPPeer(t *testing.T) {
	tree := dagmutex.Line(3)
	peers := make([]*dagmutex.Peer, 0, 3)
	addrs := make(map[dagmutex.ID]string, 3)
	for _, id := range tree.IDs() {
		p, err := dagmutex.OpenPeer(tree, 2, id)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers = append(peers, p)
		addrs[id] = p.Addr()
	}
	for _, p := range peers {
		p.Connect(addrs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, p := range peers {
		if _, err := p.Acquire(ctx); err != nil {
			t.Fatalf("node %d acquire: %v", p.ID(), err)
		}
		if err := p.Release(); err != nil {
			t.Fatalf("node %d release: %v", p.ID(), err)
		}
	}
	for _, p := range peers {
		if err := p.Err(); err != nil {
			t.Fatalf("node %d: %v", p.ID(), err)
		}
	}
}

// TestWithClockVirtualLeaseExpiry drives the whole lock-service stack
// on a virtual clock through the public facade: a lease runs out only
// when the test advances the clock, deterministically, with no sleeps.
func TestWithClockVirtualLeaseExpiry(t *testing.T) {
	v := dagmutex.NewVirtualClock()
	svc, err := dagmutex.OpenLockService(
		dagmutex.LockServiceConfig{Shards: 1, Nodes: 2, Lease: 50 * time.Millisecond, SweepInterval: 5 * time.Millisecond},
		dagmutex.WithClock(v))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	h, err := svc.Acquire(ctx, "r")
	if err != nil {
		t.Fatal(err)
	}
	// Real time passing changes nothing: the lease lives on v.
	if err := svc.Release("r"); err != nil {
		t.Fatalf("release within virtual lease = %v", err)
	}
	if _, err := svc.Acquire(ctx, "r"); err != nil {
		t.Fatal(err)
	}
	v.Advance(200 * time.Millisecond) // lease out; sweeper reclaims deterministically
	if err := svc.Release("r"); !errors.Is(err, dagmutex.ErrLeaseExpired) {
		t.Fatalf("release after virtual expiry = %v, want ErrLeaseExpired", err)
	}
	_ = h
}

// TestWithClockRejectedOverTCP pins the loud failure: virtual time and
// real sockets cannot mix.
func TestWithClockRejectedOverTCP(t *testing.T) {
	v := dagmutex.NewVirtualClock()
	if _, err := dagmutex.Open(dagmutex.Star(3), 1,
		dagmutex.WithTransport(dagmutex.TCP("")), dagmutex.WithClock(v)); err == nil ||
		!strings.Contains(err.Error(), "WithClock") {
		t.Fatalf("Open(TCP, WithClock) = %v, want a WithClock error", err)
	}
	if _, err := dagmutex.OpenLockService(dagmutex.LockServiceConfig{},
		dagmutex.WithTransport(dagmutex.TCP("")), dagmutex.WithMember(1),
		dagmutex.WithClock(v)); err == nil ||
		!strings.Contains(err.Error(), "WithClock") {
		t.Fatalf("OpenLockService(TCP, WithClock) = %v, want a WithClock error", err)
	}
	if _, err := dagmutex.OpenPeer(dagmutex.Star(3), 1, 2,
		dagmutex.WithClock(v)); err == nil || !strings.Contains(err.Error(), "WithClock") {
		t.Fatalf("OpenPeer(WithClock) = %v, want a WithClock error", err)
	}
}
