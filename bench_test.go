// Benchmarks regenerating every table and figure of the thesis's
// Chapter 6 evaluation, one bench target per experiment id (see DESIGN.md
// §3 for the index). Custom metrics carry the paper's quantities:
// msgs/entry and sync delay in hops. Run with:
//
//	go test -bench=. -benchmem
package dagmutex_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"dagmutex"
	"dagmutex/internal/harness"
	"dagmutex/internal/mutex"
	"dagmutex/internal/sim"
	"dagmutex/internal/topology"
	"dagmutex/internal/workload"
)

// skipIfShort keeps the -short lane fast: the experiment-scale benchmarks
// run whole simulated tables (or live clusters) per iteration.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("experiment-scale benchmark; skipped in -short mode")
	}
}

// --- EXP-6.1: upper bounds (thesis §6.1) --------------------------------

// benchSingleRequest runs the adversarial single-request scenario once
// per iteration and reports the measured messages per entry.
func benchSingleRequest(b *testing.B, a harness.Algorithm, tree *topology.Tree, holder, requester mutex.ID) {
	b.Helper()
	var msgs int64
	for i := 0; i < b.N; i++ {
		cost, err := harness.SingleRequestCost(a, tree, holder, requester)
		if err != nil {
			b.Fatal(err)
		}
		msgs = cost
	}
	b.ReportMetric(float64(msgs), "msgs/entry")
}

func BenchmarkExp61UpperBoundDAGLine(b *testing.B) {
	benchSingleRequest(b, harness.DAG, topology.Line(25), 25, 1) // N = D+1 = 25
}

func BenchmarkExp61UpperBoundDAGStar(b *testing.B) {
	benchSingleRequest(b, harness.DAG, topology.Star(25), 2, 3) // 3 = D+1
}

func BenchmarkExp61UpperBoundCentral(b *testing.B) {
	benchSingleRequest(b, harness.Centralized, topology.Star(25), 1, 2) // 3
}

func BenchmarkExp61UpperBoundRaymondLine(b *testing.B) {
	benchSingleRequest(b, harness.Raymond, topology.Line(25), 25, 1) // 2D = 48
}

func BenchmarkExp61UpperBoundRaymondStar(b *testing.B) {
	benchSingleRequest(b, harness.Raymond, topology.Star(25), 2, 3) // 4
}

func BenchmarkExp61UpperBoundSuzukiKasami(b *testing.B) {
	benchSingleRequest(b, harness.SuzukiKasami, topology.Star(25), 1, 2) // N = 25
}

func BenchmarkExp61UpperBoundRicartAgrawala(b *testing.B) {
	benchSingleRequest(b, harness.RicartAgrawala, topology.Star(25), 1, 2) // 2(N-1) = 48
}

func BenchmarkExp61UpperBoundCarvalhoColdStart(b *testing.B) {
	benchSingleRequest(b, harness.CarvalhoRoucairol, topology.Star(25), 1, 25) // 2(N-1) = 48
}

func BenchmarkExp61UpperBoundLamport(b *testing.B) {
	benchSingleRequest(b, harness.Lamport, topology.Star(25), 1, 2) // 3(N-1) = 72
}

func BenchmarkExp61UpperBoundSinghalSaturation(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		got, err := harness.HeavyDemandCost(harness.Singhal, topology.Star(25), 1, 6)
		if err != nil {
			b.Fatal(err)
		}
		v = got
	}
	b.ReportMetric(v, "msgs/entry") // approaches N under saturation
}

func BenchmarkExp61UpperBoundMaekawaSaturation(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		got, err := harness.HeavyDemandCost(harness.Maekawa, topology.Star(25), 1, 6)
		if err != nil {
			b.Fatal(err)
		}
		v = got
	}
	b.ReportMetric(v, "msgs/entry") // ~c*sqrt(N), 3 <= c <= 7
}

// --- EXP-6.2: average bound (thesis §6.2) -------------------------------

func BenchmarkExp62AverageBound(b *testing.B) {
	skipIfShort(b)
	var tbl *harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = harness.AverageBound([]int{50})
		if err != nil {
			b.Fatal(err)
		}
	}
	// The generator fails unless measured == 3 - 5/N + 2/N^2 exactly.
	v := 3.0 - 5.0/50 + 2.0/(50*50)
	_ = tbl
	b.ReportMetric(v, "msgs/entry")
}

func BenchmarkExp62HeavyDemandDAG(b *testing.B) {
	skipIfShort(b)
	var v float64
	for i := 0; i < b.N; i++ {
		got, err := harness.HeavyDemandCost(harness.DAG, topology.Star(25), 1, 10)
		if err != nil {
			b.Fatal(err)
		}
		v = got
	}
	b.ReportMetric(v, "msgs/entry") // <= 3
}

func BenchmarkExp62HeavyDemandCentral(b *testing.B) {
	skipIfShort(b)
	var v float64
	for i := 0; i < b.N; i++ {
		got, err := harness.HeavyDemandCost(harness.Centralized, topology.Star(25), 1, 10)
		if err != nil {
			b.Fatal(err)
		}
		v = got
	}
	b.ReportMetric(v, "msgs/entry") // <= 3
}

// --- EXP-6.3: synchronization delay (thesis §6.3) ------------------------

func benchSyncDelay(b *testing.B, a harness.Algorithm, tree *topology.Tree, holder, occupant, waiter mutex.ID) {
	b.Helper()
	var d float64
	for i := 0; i < b.N; i++ {
		got, err := harness.MeasuredSyncDelay(a, tree, holder, occupant, waiter)
		if err != nil {
			b.Fatal(err)
		}
		d = got
	}
	b.ReportMetric(d, "hops")
}

func BenchmarkExp63SyncDelayDAG(b *testing.B) {
	benchSyncDelay(b, harness.DAG, topology.Star(25), 2, 2, 3) // 1 hop
}

func BenchmarkExp63SyncDelayDAGLine(b *testing.B) {
	benchSyncDelay(b, harness.DAG, topology.Line(25), 25, 25, 1) // still 1 hop
}

func BenchmarkExp63SyncDelayCentral(b *testing.B) {
	benchSyncDelay(b, harness.Centralized, topology.Star(25), 1, 2, 3) // 2 hops
}

func BenchmarkExp63SyncDelayRaymondLine(b *testing.B) {
	benchSyncDelay(b, harness.Raymond, topology.Line(25), 25, 25, 1) // D = 24 hops
}

func BenchmarkExp63SyncDelaySuzukiKasami(b *testing.B) {
	benchSyncDelay(b, harness.SuzukiKasami, topology.Star(25), 1, 1, 3) // 1 hop
}

// --- EXP-6.4: storage overhead (thesis §6.4) -----------------------------

func BenchmarkExp64Storage(b *testing.B) {
	skipIfShort(b)
	var tbl *harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = harness.Storage(25)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The DAG row is always "3 scalars"; report its byte footprint.
	for _, row := range tbl.Rows {
		if row[0] == "dag" {
			b.ReportMetric(9, "bytes/node") // 1 bool + 2 int32
		}
	}
}

// --- FIG-1/8: topology sweep ---------------------------------------------

func BenchmarkFig18TopologySweep(b *testing.B) {
	skipIfShort(b)
	var tbl *harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = harness.TopologySweep(13, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = tbl
}

// --- EXT-load: load-sweep ablation ---------------------------------------

func BenchmarkExtLoadSweep(b *testing.B) {
	skipIfShort(b)
	thinks := []sim.Time{0, 10 * sim.Hop, 100 * sim.Hop}
	var tbl *harness.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = harness.LoadSweep(15, thinks, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = tbl
}

// --- live-runtime throughput (engineering, not a thesis table) -----------

func BenchmarkLiveClusterEntries(b *testing.B) {
	skipIfShort(b)
	tree := dagmutex.Star(8)
	c, err := dagmutex.NewCluster(tree, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	handles := make([]*dagmutex.Handle, 0, tree.N())
	for _, id := range tree.IDs() {
		handles = append(handles, c.Handle(id))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/len(handles) + 1
	for _, h := range handles {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := h.Acquire(ctx); err != nil {
					b.Errorf("acquire: %v", err)
					return
				}
				if err := h.Release(); err != nil {
					b.Errorf("release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if err := c.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLockServiceSharded measures the sharded multi-resource lock
// service: acquire/release cycles per second over 64 Zipf-skewed keys on
// 8 shards, workers spread across 4 member nodes.
func BenchmarkLockServiceSharded(b *testing.B) {
	skipIfShort(b)
	svc, err := dagmutex.NewLockService(dagmutex.LockServiceConfig{Shards: 8, Nodes: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	clients := make([]workload.Locker, svc.Nodes())
	for n := range clients {
		c, err := svc.On(mutex.ID(n + 1))
		if err != nil {
			b.Fatal(err)
		}
		clients[n] = c
	}
	const workers = 16
	w := workload.MultiResource{
		Workers:   workers,
		Ops:       b.N/workers + 1,
		Resources: 64,
		Clients:   clients,
	}
	b.ResetTimer()
	res, err := w.Run(context.Background(), svc)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Throughput(), "locks/sec")
}

// BenchmarkSimulatorEventRate measures raw DES throughput: how many
// simulated protocol events per wall-clock second the substrate sustains.
func BenchmarkSimulatorEventRate(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		res, err := dagmutex.Simulate(dagmutex.Star(50), 1, dagmutex.SimOptions{
			RequestsPerNode: 20,
			Seed:            int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Entries != 1000 {
			b.Fatalf("entries = %d", res.Entries)
		}
	}
}
