package dagmutex_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dagmutex"
	"dagmutex/internal/workload"
)

// TestLockServiceQuickstart exercises the re-exported lock-service API the
// way the README shows it: named resources, sharded concurrency, stats.
func TestLockServiceQuickstart(t *testing.T) {
	svc, err := dagmutex.NewLockService(dagmutex.LockServiceConfig{Shards: 4, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	balances := map[string]int{"alice": 100, "bob": 0}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := svc.Acquire(ctx, "account:alice"); err != nil {
					t.Error(err)
					return
				}
				balances["alice"]--
				balances["bob"]++
				if err := svc.Release("account:alice"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if balances["alice"] != 0 || balances["bob"] != 100 {
		t.Fatalf("balances = %v, want alice=0 bob=100", balances)
	}
	if st := svc.Stats(); st.Grants != 100 {
		t.Fatalf("grants = %d, want 100", st.Grants)
	}
	if err := svc.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLockServiceDrivenByMultiResourceWorkload wires the workload driver
// to the real service — the same pairing cmd/dagbench benchmarks.
func TestLockServiceDrivenByMultiResourceWorkload(t *testing.T) {
	svc, err := dagmutex.NewLockService(dagmutex.LockServiceConfig{Shards: 8, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	w := workload.MultiResource{Workers: 8, Ops: 25, Resources: 32, Seed: 11}
	res, err := w.Run(context.Background(), svc)
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 * 25; res.Ops != want {
		t.Fatalf("ops = %d, want %d", res.Ops, want)
	}
	st := svc.Stats()
	if st.Grants != int64(res.Ops) {
		t.Fatalf("service grants = %d, workload ops = %d", st.Grants, res.Ops)
	}
	if err := svc.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestLockServiceClientsOnDistinctNodes locks through per-member clients.
func TestLockServiceClientsOnDistinctNodes(t *testing.T) {
	svc, err := dagmutex.NewLockService(dagmutex.LockServiceConfig{Shards: 2, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx := context.Background()
	// Per-key counters: keys on different shards are held concurrently by
	// design, so only same-key increments are serialized by the lock.
	counters := make([]int, 10)
	var wg sync.WaitGroup
	for n := 1; n <= 4; n++ {
		c, err := svc.On(dagmutex.ID(n))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				key := fmt.Sprintf("row-%d", j)
				if _, err := c.Acquire(ctx, key); err != nil {
					t.Error(err)
					return
				}
				counters[j]++
				if err := c.Release(key); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != 40 {
		t.Fatalf("counter total = %d, want 40", total)
	}
}
