package dagmutex

import (
	"context"
	"sync"
	"time"

	"dagmutex/internal/client"
)

// This file is the dialing side of the v2 member/client split: processes
// that are NOT vertices of the token DAG attach to a member over TCP and
// acquire through it. The member queues its clients, arbitrates through
// the token protocol, bounds every remote hold with a lease, and cleans
// up after a vanished client — so a small DAG of members can serve a
// client population far larger than the tree. See the client wire frame
// notes in internal/transport (next to the DAG codec) for the protocol.

// ErrClientBusy reports a request the member shed because the
// connection already has its maximum number of requests queued — the
// backpressure signal. Drain or retry.
var ErrClientBusy = client.ErrBusy

// RemoteSession is the client-side session over one dialed DAG member:
// the same Acquire/TryAcquire/Release surface as a member's own Session,
// arbitrating the member cluster's single critical section, but held
// through the member's client proxy — queued behind the member's other
// clients and bounded by the proxy's lease.
type RemoteSession struct {
	c *client.Conn

	mu    sync.Mutex
	fence uint64 // fencing token of the current hold, 0 when free
}

// Dial attaches to a DAG member's listener (Cluster.Addr, Peer.Addr) as
// a non-member client. Close the session to hang up; the member then
// releases anything it still holds and aborts its queued acquires,
// exactly as if the client process had crashed.
//
// The member serializes its dialed clients against each other, but it
// cannot serialize them against its own direct Session use — the
// paper's one-outstanding-request rule is per node. A member process
// that serves clients should not drive its own Session concurrently
// with them; when it needs the mutex itself, it can Dial its own
// address and queue like everyone else.
func Dial(addr string) (*RemoteSession, error) {
	return DialContext(context.Background(), addr)
}

// DialContext is Dial with connection establishment bounded by ctx.
func DialContext(ctx context.Context, addr string) (*RemoteSession, error) {
	c, err := client.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &RemoteSession{c: c}, nil
}

// Acquire requests the critical section and blocks until the member
// grants it, the connection dies, or ctx is done. The returned Grant
// carries the fencing generation and the lease deadline the member
// attached (past it the member reclaims the mutex from this client). On
// ctx expiry the cancellation is propagated into the member's queue; a
// grant that races the cancellation on the wire is handed straight
// back, so no hold leaks.
func (s *RemoteSession) Acquire(ctx context.Context) (Grant, error) {
	h, err := s.c.Acquire(ctx, "")
	if err != nil {
		return Grant{}, err
	}
	s.mu.Lock()
	s.fence = h.Fence
	s.mu.Unlock()
	return Grant{Generation: h.Fence, At: time.Now(), Expires: h.Expires}, nil
}

// TryAcquire enters the critical section only if the member can grant
// immediately — its client queue is empty and it sits on an idle token.
// It reports false (with no error) when the section would have to be
// waited for.
func (s *RemoteSession) TryAcquire() (Grant, bool, error) {
	h, ok, err := s.c.TryAcquire("")
	if err != nil || !ok {
		return Grant{}, false, err
	}
	s.mu.Lock()
	s.fence = h.Fence
	s.mu.Unlock()
	return Grant{Generation: h.Fence, At: time.Now(), Expires: h.Expires}, true, nil
}

// Release leaves the critical section. A hold whose lease already ran
// out reports ErrLeaseExpired (the member reclaimed it; work done since
// the deadline must not be committed); releasing nothing reports
// ErrNotHeld.
func (s *RemoteSession) Release() error {
	s.mu.Lock()
	fence := s.fence
	s.fence = 0
	s.mu.Unlock()
	if fence != 0 {
		return s.c.ReleaseHold(client.Hold{Fence: fence})
	}
	return s.c.Release("")
}

// Err returns the connection's terminal error, if it has one.
func (s *RemoteSession) Err() error { return s.c.Err() }

// Close hangs up, releasing whatever the member still tracks for this
// client.
func (s *RemoteSession) Close() error { return s.c.Close() }

// RemoteLockClient is the client-side view of a dialed lock-service
// member: Acquire/TryAcquire/Release of named resources, with fencing
// tokens and lease deadlines, held through the member's own slots. It
// satisfies the same Locker surface as an in-process LockClient, so
// workloads drive both identically.
type RemoteLockClient struct {
	c *client.Conn
}

// DialLockService attaches to a lock-service member's listener
// (LockService.Addr on a TCP member) as a non-member client.
func DialLockService(addr string) (*RemoteLockClient, error) {
	return DialLockServiceContext(context.Background(), addr)
}

// DialLockServiceContext is DialLockService with connection
// establishment bounded by ctx.
func DialLockServiceContext(ctx context.Context, addr string) (*RemoteLockClient, error) {
	c, err := client.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &RemoteLockClient{c: c}, nil
}

// Acquire locks resource through the member, returning the hold's
// fencing token and lease deadline. Cancelling ctx propagates into the
// member's queue; no hold leaks on the race.
func (r *RemoteLockClient) Acquire(ctx context.Context, resource string) (LockHold, error) {
	h, err := r.c.Acquire(ctx, resource)
	if err != nil {
		return LockHold{}, err
	}
	return LockHold{Resource: resource, Fence: h.Fence, Expires: h.Expires}, nil
}

// TryAcquire locks resource only if the member can grant it without
// waiting; false (with no error) otherwise.
func (r *RemoteLockClient) TryAcquire(resource string) (LockHold, bool, error) {
	h, ok, err := r.c.TryAcquire(resource)
	if err != nil || !ok {
		return LockHold{}, false, err
	}
	return LockHold{Resource: resource, Fence: h.Fence, Expires: h.Expires}, true, nil
}

// Release unlocks resource by name. ErrNotHeld and ErrLeaseExpired
// arrive exactly as they do in process.
func (r *RemoteLockClient) Release(resource string) error { return r.c.Release(resource) }

// ReleaseHold unlocks the exact hold h, matched by its fencing token —
// the precise path for lease-aware code.
func (r *RemoteLockClient) ReleaseHold(h LockHold) error {
	return r.c.ReleaseHold(client.Hold{Resource: h.Resource, Fence: h.Fence})
}

// Err returns the connection's terminal error, if it has one.
func (r *RemoteLockClient) Err() error { return r.c.Err() }

// Close hangs up, releasing every hold the member still tracks for this
// client.
func (r *RemoteLockClient) Close() error { return r.c.Close() }
