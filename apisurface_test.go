package dagmutex_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"sort"
	"strings"
	"testing"
)

// The API-surface golden: every exported symbol of package dagmutex,
// rendered one per line and compared against the committed api.txt. A
// PR that changes the public surface must regenerate the golden with
//
//	go test -run TestAPISurfaceGolden -update-api
//
// and commit the diff — so the surface can evolve, but never silently.
var updateAPI = flag.Bool("update-api", false, "rewrite api.txt from the current public surface")

func TestAPISurfaceGolden(t *testing.T) {
	got := renderAPISurface(t)
	if *updateAPI {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("missing api.txt golden (run with -update-api to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface drifted from api.txt.\n"+
			"If the change is intentional, regenerate with:\n"+
			"  go test -run TestAPISurfaceGolden -update-api\n\n%s",
			surfaceDiff(string(want), got))
	}
}

// renderAPISurface parses the package syntactically (no type checking,
// so the test needs nothing beyond the standard library) and renders
// every exported constant, variable, function, type, exported field and
// method as one sorted line each.
func renderAPISurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["dagmutex"]
	if !ok {
		t.Fatalf("package dagmutex not found (have %v)", pkgs)
	}
	d := doc.New(pkg, "dagmutex", 0)

	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	exprStr := func(e ast.Expr) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, e); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	funcLine := func(f *doc.Func, recv string) {
		params := fieldListTypes(exprStr, f.Decl.Type.Params)
		results := fieldListTypes(exprStr, f.Decl.Type.Results)
		sig := fmt.Sprintf("func %s%s(%s)", recv, f.Name, params)
		if results != "" {
			sig += " (" + results + ")"
		}
		add("%s", sig)
	}

	for _, c := range d.Consts {
		for _, name := range c.Names {
			if ast.IsExported(name) {
				add("const %s", name)
			}
		}
	}
	for _, v := range d.Vars {
		for _, name := range v.Names {
			if ast.IsExported(name) {
				add("var %s", name)
			}
		}
	}
	for _, f := range d.Funcs {
		if ast.IsExported(f.Name) {
			funcLine(f, "")
		}
	}
	for _, typ := range d.Types {
		if !ast.IsExported(typ.Name) {
			continue
		}
		spec := typ.Decl.Specs[0].(*ast.TypeSpec)
		switch u := spec.Type.(type) {
		case *ast.StructType:
			add("type %s struct", typ.Name)
			for _, f := range u.Fields.List {
				for _, n := range f.Names {
					if ast.IsExported(n.Name) {
						add("type %s struct, field %s %s", typ.Name, n.Name, exprStr(f.Type))
					}
				}
			}
		case *ast.InterfaceType:
			add("type %s interface", typ.Name)
			for _, m := range u.Methods.List {
				for _, n := range m.Names {
					if ast.IsExported(n.Name) {
						add("type %s interface, method %s", typ.Name, n.Name)
					}
				}
			}
		default:
			if spec.Assign.IsValid() {
				add("type %s = %s", typ.Name, exprStr(spec.Type))
			} else {
				add("type %s %s", typ.Name, exprStr(spec.Type))
			}
		}
		// Package-level consts/vars/funcs doc.New grouped under the type.
		for _, c := range typ.Consts {
			for _, name := range c.Names {
				if ast.IsExported(name) {
					add("const %s", name)
				}
			}
		}
		for _, v := range typ.Vars {
			for _, name := range v.Names {
				if ast.IsExported(name) {
					add("var %s", name)
				}
			}
		}
		for _, f := range typ.Funcs {
			if ast.IsExported(f.Name) {
				funcLine(f, "")
			}
		}
		for _, m := range typ.Methods {
			if ast.IsExported(m.Name) {
				funcLine(m, "("+typ.Name+") ")
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// fieldListTypes renders a parameter or result list as comma-separated
// types (names dropped, so renaming a parameter is not an API change).
func fieldListTypes(exprStr func(ast.Expr) string, fl *ast.FieldList) string {
	if fl == nil {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		typ := exprStr(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, typ)
		}
	}
	return strings.Join(parts, ", ")
}

// surfaceDiff renders the line-level additions and removals between the
// golden and the current surface.
func surfaceDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(strings.TrimSpace(got), "\n") {
		if !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	for _, l := range strings.Split(strings.TrimSpace(want), "\n") {
		if !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	if b.Len() == 0 {
		return "(lines reordered only)"
	}
	return b.String()
}
