package dagmutex_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dagmutex"
)

// scrape fetches one debug endpoint and returns its body.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestLockServiceDebugEndpoints opens an instrumented lock service with
// live debug endpoints, drives it, and scrapes /metrics over real HTTP:
// the per-shard counters and wait quantiles must be there, live, and
// /debug/pprof/ must answer. This is the facade-level round trip of the
// whole telemetry stack.
func TestLockServiceDebugEndpoints(t *testing.T) {
	reg := dagmutex.NewTelemetry()
	var mu sync.Mutex
	kinds := make(map[dagmutex.TraceKind]int)
	svc, err := dagmutex.OpenLockService(dagmutex.LockServiceConfig{Shards: 2, Nodes: 2},
		dagmutex.WithTelemetry(reg),
		dagmutex.WithTraceObserver(func(e dagmutex.TraceEvent) {
			mu.Lock()
			kinds[e.Kind]++
			mu.Unlock()
		}),
		dagmutex.WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Telemetry() != reg {
		t.Fatal("service does not report the registry it was opened with")
	}
	addr := svc.DebugAddr()
	if addr == "" {
		t.Fatal("no debug address bound")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const ops = 25
	for i := 0; i < ops; i++ {
		h, err := svc.Acquire(ctx, fmt.Sprintf("res-%d", i%4))
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.ReleaseHold(h); err != nil {
			t.Fatal(err)
		}
	}

	body := scrape(t, addr, "/metrics")
	for _, want := range []string{
		`dagmutex_grants_total{shard="0"}`,
		`dagmutex_grants_total{shard="1"}`,
		`dagmutex_msgs_per_grant{shard="0"}`,
		`dagmutex_acquire_wait_seconds{shard="1",quantile="0.95"}`,
		`dagmutex_hold_duration_seconds_sum{shard="0"}`,
		`dagmutex_recoveries_total{shard="1"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var total int64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "dagmutex_grants_total{") {
			var v float64
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v)
			total += int64(v)
		}
	}
	if total != ops {
		t.Errorf("scraped grants_total sums to %d, want %d", total, ops)
	}
	if got := scrape(t, addr, "/debug/pprof/cmdline"); got == "" {
		t.Error("/debug/pprof/cmdline served nothing")
	}

	mu.Lock()
	defer mu.Unlock()
	if kinds[dagmutex.TraceGrant] != ops || kinds[dagmutex.TraceRelease] != ops {
		t.Errorf("trace stream: %d grants, %d releases, want %d each",
			kinds[dagmutex.TraceGrant], kinds[dagmutex.TraceRelease], ops)
	}
}

// TestClusterTelemetry checks the bare-cluster side of the facade: the
// messages gauge and the causal trace stream of a plain Open.
func TestClusterTelemetry(t *testing.T) {
	reg := dagmutex.NewTelemetry()
	var mu sync.Mutex
	var grants int
	c, err := dagmutex.Open(dagmutex.Star(4), 1,
		dagmutex.WithTelemetry(reg),
		dagmutex.WithTraceObserver(func(e dagmutex.TraceEvent) {
			if e.Kind == dagmutex.TraceGrant {
				mu.Lock()
				grants++
				mu.Unlock()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Metrics() != reg {
		t.Fatal("cluster does not report the registry it was opened with")
	}

	for id := dagmutex.ID(1); id <= 4; id++ {
		s := c.Session(id)
		if _, err := s.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := s.Release(); err != nil {
			t.Fatal(err)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dagmutex_messages_total") {
		t.Fatalf("no messages gauge in %q", b.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if grants != 4 {
		t.Fatalf("trace stream saw %d grants, want 4", grants)
	}
}

// TestGatewayDebugEndpoints drives a gateway opened with debug
// endpoints and scrapes the client-tier admission counters.
func TestGatewayDebugEndpoints(t *testing.T) {
	cfg := dagmutex.LockServiceConfig{Shards: 1, Nodes: 2}
	svc1, err := dagmutex.OpenLockService(cfg, dagmutex.WithTransport(dagmutex.TCP("")), dagmutex.WithMember(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc1.Close()
	svc2, err := dagmutex.OpenLockService(cfg, dagmutex.WithTransport(dagmutex.TCP("")), dagmutex.WithMember(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	book := map[dagmutex.ID]string{1: svc1.Addr(), 2: svc2.Addr()}
	if err := svc1.Connect(book); err != nil {
		t.Fatal(err)
	}
	if err := svc2.Connect(book); err != nil {
		t.Fatal(err)
	}
	g, err := dagmutex.OpenGateway("", []string{svc1.Addr(), svc2.Addr()}, dagmutex.WithDebugAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.DebugAddr() == "" || g.Metrics() == nil {
		t.Fatal("gateway debug endpoints not armed")
	}

	conn, err := dagmutex.DialLockService(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		h, err := conn.Acquire(ctx, "gw")
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.ReleaseHold(h); err != nil {
			t.Fatal(err)
		}
	}

	body := scrape(t, g.DebugAddr(), "/metrics")
	// Releases are exempt from admission, so only the 5 acquires count.
	for _, want := range []string{
		"dagmutex_client_conns 1",
		"dagmutex_client_admitted_total 5",
		"dagmutex_client_answered_total 5",
		`dagmutex_client_shed_total{reason="depth"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
