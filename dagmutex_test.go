//lint:file-ignore SA1019 these tests pin the behavior of the deprecated pre-v2 constructors, which must keep working until removal
package dagmutex_test

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dagmutex"
)

func TestClusterLifecycle(t *testing.T) {
	tree := dagmutex.Star(6)
	c, err := dagmutex.NewCluster(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Tree().N() != 6 {
		t.Fatalf("tree N = %d", c.Tree().N())
	}

	var inCS atomic.Int32
	var wg sync.WaitGroup
	for _, id := range tree.IDs() {
		h := c.Handle(id)
		if h == nil {
			t.Fatalf("nil handle for node %d", id)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for i := 0; i < 5; i++ {
				if _, err := h.Acquire(ctx); err != nil {
					t.Errorf("acquire %d: %v", h.ID(), err)
					return
				}
				if got := inCS.Add(1); got != 1 {
					t.Errorf("%d holders in CS", got)
				}
				inCS.Add(-1)
				if err := h.Release(); err != nil {
					t.Errorf("release %d: %v", h.ID(), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestNewClusterRejectsBadHolder(t *testing.T) {
	if _, err := dagmutex.NewCluster(dagmutex.Star(3), 9); err == nil {
		t.Fatal("holder outside the tree accepted")
	}
	if _, err := dagmutex.NewCluster(dagmutex.Star(3), dagmutex.Nil); err == nil {
		t.Fatal("nil holder accepted")
	}
}

func TestTreeConfigOrientsTowardHolder(t *testing.T) {
	cfg, err := dagmutex.TreeConfig(dagmutex.Line(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Parent[1] != 2 || cfg.Parent[2] != 3 || cfg.Parent[3] != 4 {
		t.Fatalf("parents %v", cfg.Parent)
	}
	if _, ok := cfg.Parent[4]; ok {
		t.Fatal("holder must have no parent")
	}
}

func TestSimulateDefaultsToDAG(t *testing.T) {
	res, err := dagmutex.Simulate(dagmutex.Star(10), 1, dagmutex.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "dag" {
		t.Fatalf("algorithm = %q", res.Algorithm)
	}
	if res.Entries != 10*5 {
		t.Fatalf("entries = %d, want 50", res.Entries)
	}
	if res.MessagesPerEntry > 3 {
		t.Fatalf("msgs/entry = %.2f on a star, want <= 3", res.MessagesPerEntry)
	}
	// The FIFO clamp may add one tick (0.001 hop) to an arrival time, so
	// allow a hair above the exact single hop.
	if res.MaxSyncDelayHops > 1.01 {
		t.Fatalf("max sync delay = %.3f, want ~1", res.MaxSyncDelayHops)
	}
}

func TestSimulateEveryAlgorithm(t *testing.T) {
	for _, name := range dagmutex.AlgorithmNames() {
		res, err := dagmutex.Simulate(dagmutex.Star(9), 1, dagmutex.SimOptions{
			Algorithm:       name,
			RequestsPerNode: 3,
			ThinkHops:       4,
			Seed:            2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Entries != 27 {
			t.Fatalf("%s: entries = %d, want 27", name, res.Entries)
		}
	}
}

func TestSimulateUnknownAlgorithm(t *testing.T) {
	_, err := dagmutex.Simulate(dagmutex.Star(3), 1, dagmutex.SimOptions{Algorithm: "bogus"})
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v", err)
	}
}

func TestAlgorithmNamesListsDAGFirst(t *testing.T) {
	names := dagmutex.AlgorithmNames()
	if len(names) != 9 || names[0] != "dag" {
		t.Fatalf("names = %v", names)
	}
}

func TestTCPPeerSmoke(t *testing.T) {
	tree := dagmutex.Line(3)
	peers := make([]*dagmutex.TCPPeer, 0, 3)
	addrs := make(map[dagmutex.ID]string, 3)
	for _, id := range tree.IDs() {
		p, err := dagmutex.NewTCPPeer(id, tree, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers = append(peers, p)
		addrs[id] = p.Addr()
	}
	for _, p := range peers {
		p.Connect(addrs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, p := range peers {
		if _, err := p.Acquire(ctx); err != nil {
			t.Fatalf("node %d acquire: %v", p.ID(), err)
		}
		if err := p.Release(); err != nil {
			t.Fatalf("node %d release: %v", p.ID(), err)
		}
	}
	for _, p := range peers {
		if err := p.Err(); err != nil {
			t.Fatalf("node %d: %v", p.ID(), err)
		}
	}
}

func TestClusterWithINITServesWorkload(t *testing.T) {
	tree := dagmutex.KAry(10, 3)
	c, err := dagmutex.NewClusterWithINIT(tree, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The INIT flood costs one INITIALIZE per edge.
	if got := c.Messages(); got != int64(tree.N()-1) {
		t.Fatalf("INIT messages = %d, want %d", got, tree.N()-1)
	}
	var wg sync.WaitGroup
	for _, id := range tree.IDs() {
		h := c.Handle(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for i := 0; i < 3; i++ {
				if _, err := h.Acquire(ctx); err != nil {
					t.Errorf("acquire %d: %v", h.ID(), err)
					return
				}
				if err := h.Release(); err != nil {
					t.Errorf("release %d: %v", h.ID(), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterWithINITRejectsBadHolder(t *testing.T) {
	if _, err := dagmutex.NewClusterWithINIT(dagmutex.Star(3), 9); err == nil {
		t.Fatal("holder outside tree accepted")
	}
}
