package dagmutex

import (
	"fmt"
	"math/rand"

	"dagmutex/internal/cluster"
	"dagmutex/internal/harness"
	"dagmutex/internal/metrics"
	"dagmutex/internal/sim"
	"dagmutex/internal/workload"
)

// SimOptions parameterizes a deterministic simulation run.
type SimOptions struct {
	// Algorithm selects the protocol; see AlgorithmNames. Empty means the
	// paper's DAG algorithm.
	Algorithm string
	// RequestsPerNode is how many critical-section entries every node
	// performs (default 5).
	RequestsPerNode int
	// ThinkHops is the mean idle time between a node's entries, in
	// message hops. Zero is the thesis's heavy-demand regime.
	ThinkHops float64
	// CSTimeHops is the time spent inside the critical section, in hops
	// (default 0.5).
	CSTimeHops float64
	// Seed drives all randomness; runs with equal options and seed are
	// bit-identical (default 1).
	Seed int64
}

// SimResult summarizes one simulation run with the metrics Chapter 6 of
// the thesis reports.
type SimResult struct {
	// Algorithm and Nodes echo the configuration.
	Algorithm string
	Nodes     int
	// Entries is the number of completed critical-section entries.
	Entries int
	// Messages is the total protocol messages exchanged.
	Messages int64
	// MessagesPerEntry is the paper's primary cost metric.
	MessagesPerEntry float64
	// MeanSyncDelayHops and MaxSyncDelayHops summarize the §6.3 delays of
	// grants that were already waiting when the previous holder exited;
	// both are zero when no grant waited.
	MeanSyncDelayHops float64
	MaxSyncDelayHops  float64
	// MeanWaitHops is the average request-to-grant latency in hops.
	MeanWaitHops float64
}

// AlgorithmNames lists the protocols Simulate accepts, the paper's DAG
// algorithm first.
func AlgorithmNames() []string {
	algos := harness.Algorithms()
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	return names
}

// Simulate runs the chosen protocol on tree (token or coordinator at
// holder) under a closed-loop workload on the deterministic discrete-
// event simulator, validating safety and liveness throughout.
func Simulate(tree *Tree, holder ID, opts SimOptions) (SimResult, error) {
	name := opts.Algorithm
	if name == "" {
		name = "dag"
	}
	algo, err := harness.ByName(name)
	if err != nil {
		return SimResult{}, err
	}
	requests := opts.RequestsPerNode
	if requests <= 0 {
		requests = 5
	}
	csTime := sim.Time(opts.CSTimeHops * float64(sim.Hop))
	if opts.CSTimeHops == 0 {
		csTime = sim.Hop / 2
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	cfg, err := algo.Configure(tree, holder)
	if err != nil {
		return SimResult{}, err
	}
	c, err := cluster.New(algo.Builder, cfg, cluster.WithCSTime(csTime), cluster.WithSeed(seed))
	if err != nil {
		return SimResult{}, err
	}
	workload.Closed{
		Requests: requests,
		Think:    workload.Exponential(sim.Time(opts.ThinkHops * float64(sim.Hop))),
		Rng:      rand.New(rand.NewSource(seed)),
	}.Install(c)
	if err := c.Run(); err != nil {
		return SimResult{}, fmt.Errorf("simulate %s: %w", name, err)
	}

	res := SimResult{
		Algorithm:        name,
		Nodes:            tree.N(),
		Entries:          c.Entries(),
		Messages:         c.Counts().Messages,
		MessagesPerEntry: metrics.MessagesPerEntry(c.Counts(), c.Entries()),
	}
	if ds := metrics.SyncDelays(c.Grants()); len(ds) > 0 {
		s := metrics.Summarize(ds)
		res.MeanSyncDelayHops = s.Mean
		res.MaxSyncDelayHops = s.Max
	}
	res.MeanWaitHops = metrics.Summarize(metrics.WaitTimes(c.Grants())).Mean
	return res, nil
}
