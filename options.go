package dagmutex

import (
	"context"
	"time"

	"dagmutex/internal/core"
	"dagmutex/internal/failure"
	"dagmutex/internal/telemetry"
	"dagmutex/internal/transport"
	"dagmutex/internal/vclock"
)

// Clock is the time source a cluster or lock service runs on: grant
// timestamps, lease deadlines, sweeper cadence, heartbeat ticks and
// delay-line deadlines all go through it. The default is the system
// clock; NewVirtualClock returns a deterministic one for tests and
// simulation. Attach with WithClock.
type Clock = vclock.Clock

// VirtualClock is a deterministic, manually advanced Clock: time stands
// still until Advance (or Step) fires the timers due, in order, on the
// advancing goroutine. A cluster opened with WithClock(v) does all of
// its timing — lease expiry, failure detection, rebalance ticks —
// exactly when the test advances v, turning timing-dependent tests and
// simulated-hours scenarios into deterministic, wall-clock-fast code.
type VirtualClock = vclock.Virtual

// NewVirtualClock returns a virtual clock at its epoch. Advance it with
// VirtualClock.Advance; nothing fires until then.
func NewVirtualClock() *VirtualClock { return vclock.NewVirtual() }

// Event is one failure-recovery observation (peer suspected, probe,
// token regeneration, reorientation, ...), delivered to the callback
// registered with WithObserver.
type Event = core.Event

// EventKind labels an Event.
type EventKind = core.EventKind

// Telemetry is an allocation-free metrics registry: atomic counters,
// pull-based gauges and fixed-bucket histograms with p50/p95/p99
// snapshots, rendered in the Prometheus text format by WritePrometheus.
// Construct one with NewTelemetry, attach it with WithTelemetry, and
// serve it over HTTP with ServeTelemetry (or let WithDebugAddr do both).
type Telemetry = telemetry.Registry

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.NewRegistry() }

// TelemetryServer is a live debug endpoint listener: Prometheus text
// metrics on /metrics and the pprof profiles on /debug/pprof/. Start
// one with ServeTelemetry; Close it to stop serving.
type TelemetryServer = telemetry.Server

// ServeTelemetry serves reg's metrics and the process's pprof profiles
// on addr ("" for a fresh loopback port; the bound address is Addr on
// the returned server). The caller owns the server's lifetime — or use
// WithDebugAddr to tie it to a Cluster, LockService or Gateway.
func ServeTelemetry(addr string, reg *Telemetry) (*TelemetryServer, error) {
	return telemetry.Serve(addr, reg)
}

// TraceEvent is one structured observation of the protocol in motion —
// a request issued, forwarded, the privilege dispatched, the grant, the
// release, a lease expiry, a recovery step — carrying the node, the
// requesting origin, the fencing generation and the hop count. Origin
// and fence together form the grant's causal trace ID (TraceID), so the
// full request→hops→privilege→grant chain of one critical-section entry
// can be stitched back together from the stream without any extra wire
// fields. Subscribe with WithTraceObserver.
type TraceEvent = telemetry.TraceEvent

// TraceKind labels a TraceEvent.
type TraceKind = telemetry.TraceKind

// TraceEvent kinds, in rough causal order of one grant's life.
const (
	TraceRequest   = telemetry.TraceRequest
	TraceForward   = telemetry.TraceForward
	TracePrivilege = telemetry.TracePrivilege
	TraceGrant     = telemetry.TraceGrant
	TraceRelease   = telemetry.TraceRelease
	TraceRegrant   = telemetry.TraceRegrant
	TraceExpire    = telemetry.TraceExpire
	TraceRecovery  = telemetry.TraceRecovery
)

// TransportSpec selects the messaging substrate Open runs a cluster on.
// Use the Local value or the TCP constructor.
type TransportSpec struct {
	tcp    bool
	listen string
}

// Local is the in-process substrate: every member runs in this process,
// connected by mailboxes — the default, and the right choice for
// single-binary embedding, tests and benchmarks.
var Local = TransportSpec{}

// TCP is the socket substrate: members talk over framed TCP connections
// with batched writes, and every member's listener also accepts dialed
// non-member clients (see Dial). For Open (whole cluster in this
// process) listen is ignored and every member binds a fresh loopback
// port; for OpenPeer and OpenLockService it is this member's listen
// address ("" means a fresh loopback port).
func TCP(listen string) TransportSpec { return TransportSpec{tcp: true, listen: listen} }

// Option configures Open, OpenPeer and OpenLockService. The zero
// configuration — no options — is a fail-free in-process cluster, the
// paper's model.
type Option func(*openOptions)

type openOptions struct {
	transport TransportSpec
	fcfg      *failure.Config
	inj       *failure.Injector
	init      bool
	observer  func(Event)
	member    ID
	startCtx  context.Context
	queue     *transport.ClientQueue
	policy    TopologyPolicy
	telemetry *Telemetry
	trace     func(TraceEvent)
	debugAddr *string
	clock     Clock
}

// WithTransport selects the substrate: Local (default) or TCP(listen).
func WithTransport(t TransportSpec) Option {
	return func(o *openOptions) { o.transport = t }
}

// WithClock runs the opened cluster or lock service on c: grant
// timestamps, lease deadlines and the sweeper, heartbeat failure
// detection, proxy expiry and local delay lines all read time from it.
// Pass a NewVirtualClock to make every timer deterministic — nothing
// expires or ticks until the test advances the clock. Applies to Open
// and OpenLockService on the Local substrate only; the TCP substrate's
// sockets live on real time, so combining WithClock with
// WithTransport(TCP(...)) is an error. For pure protocol simulation at
// scale (thousands of nodes, seeded fault schedules), see
// internal/simharness and `dagsim -virtual`.
func WithClock(c Clock) Option {
	return func(o *openOptions) { o.clock = c }
}

// WithFailureDetection arms the failure subsystem: every member runs a
// heartbeat failure detector tuned by cfg, a crashed member is excised
// by the surviving majority (regenerating the token if it died with the
// victim), and Cluster.Kill becomes meaningful. See the "Failure model"
// section of the package documentation.
func WithFailureDetection(cfg FailureConfig) Option {
	return func(o *openOptions) { o.fcfg = &cfg }
}

// WithInjector installs a shared fault plan consulted on every send (and
// receive, over TCP), so tests and chaos batteries can sever links,
// partition and heal deterministically. Without it, Kill lazily installs
// a private plan.
func WithInjector(inj *FaultInjector) Option {
	return func(o *openOptions) { o.inj = inj }
}

// WithINIT makes the cluster derive its edge orientation at runtime by
// executing the thesis's Figure 5 INIT flood, instead of being
// configured statically. Open blocks until every node has initialized
// (at most the tree's depth in message hops), bounded by the startup
// context (see WithStartupContext).
func WithINIT() Option {
	return func(o *openOptions) { o.init = true }
}

// WithObserver registers fn on every member for failure-recovery events
// (peer suspected, probe, regeneration, reorientation, ...), for traces
// and telemetry. fn runs inside protocol handlers and must not block.
func WithObserver(fn func(Event)) Option {
	return func(o *openOptions) { o.observer = fn }
}

// WithMember names the member id this process runs as, for
// OpenLockService over TCP (each participating process opens the same
// configuration with its own member id). Open and OpenPeer ignore it.
func WithMember(id ID) Option {
	return func(o *openOptions) { o.member = id }
}

// WithClientQueue bounds what each member's listener accepts from
// dialed non-member clients: depth caps the requests queued per
// connection (0 means the default, 64), and rate/burst arm a
// listener-wide token bucket on admitted requests (rate 0 disables it;
// burst 0 derives a one-second burst from the rate). A request over
// either bound is shed immediately with ErrClientBusy instead of
// queueing — the backpressure that keeps thousands of dialed clients
// from melting a member. Applies to Open and OpenPeer over TCP, to
// OpenLockService TCP members, and to OpenGateway.
func WithClientQueue(depth int, rate float64, burst int) Option {
	return func(o *openOptions) {
		o.queue = &transport.ClientQueue{Depth: depth, Rate: rate, Burst: burst}
	}
}

// WithStartupContext bounds Open's startup work — today, the INIT
// flood's completion wait. Without it startup is bounded by a default
// 10 s deadline.
func WithStartupContext(ctx context.Context) Option {
	return func(o *openOptions) { o.startCtx = ctx }
}

// WithTelemetry registers the opened thing's live metrics on reg. A
// LockService exports per-shard grant/release/regrant/expiry/recovery
// counters, msgs-per-grant and hops-per-grant gauges, and acquire-wait
// plus hold-duration quantiles; a Cluster exports its message counter;
// a Gateway exports the client-tier admission counters. Gauges are
// pull-based (read only when the registry is scraped) and the
// histograms are wait-free atomics, so telemetry adds no locks and no
// allocations to the grant hot path. Read it back with
// Cluster.Metrics or LockService.Telemetry, render it with
// Telemetry.WritePrometheus, or serve it with ServeTelemetry or
// WithDebugAddr.
func WithTelemetry(reg *Telemetry) Option {
	return func(o *openOptions) { o.telemetry = reg }
}

// WithTraceObserver subscribes fn to the structured trace stream: every
// request, forward, privilege dispatch, grant, release, lease expiry
// and recovery event of every member hosted in this process, each
// carrying the causal trace ID (origin and fence) that stitches one
// critical-section entry's chain together. fn runs inside protocol
// handlers and service goroutines, possibly concurrently: it must not
// block, must not call back into the cluster, and should not allocate.
// Applies to Open, OpenPeer and OpenLockService.
func WithTraceObserver(fn func(TraceEvent)) Option {
	return func(o *openOptions) { o.trace = fn }
}

// WithDebugAddr serves the debug endpoints on addr for the opened
// thing's lifetime: Prometheus text metrics on /metrics (the
// WithTelemetry registry, or a fresh one when none was attached) and
// the pprof profiles on /debug/pprof/. Use "127.0.0.1:0" for a fresh
// loopback port; read the bound address back with Cluster.DebugAddr,
// LockService.DebugAddr or Gateway.DebugAddr. Applies to Open,
// OpenLockService and OpenGateway.
func WithDebugAddr(addr string) Option {
	return func(o *openOptions) { o.debugAddr = &addr }
}

// TopologyPolicy selects how a cluster's DAG adapts to the request
// stream at runtime. The zero value is Static. Construct the adaptive
// policies with PathCompress or Rebalance; every member of a cluster
// (and every participating process of a distributed deployment) must
// use the same policy.
type TopologyPolicy struct {
	compress bool
	every    time.Duration
}

// Static is the non-adaptive policy, and the default: the DAG's shape
// changes only by the paper's own edge reversal, one edge per request
// hop, so the initial tree's geometry keeps governing message cost.
var Static = TopologyPolicy{}

// PathCompress returns the path-compressing policy: every node a
// request passes through re-points its NEXT edge directly at the
// requester (the Naimi–Trehel reversal) instead of at the neighbor the
// request arrived from. Compression is purely local — no extra messages
// and no coordination — and keeps the expected request path short under
// contention regardless of the initial tree, so a pessimal chain decays
// toward the star the thesis proves optimal.
func PathCompress() TopologyPolicy { return TopologyPolicy{compress: true} }

// Rebalance returns the fully adaptive policy: path compression plus,
// in a lock service, a per-shard rebalancer that every interval
// re-roots the shard's DAG around its observed hottest requester using
// the planned-reorient epoch rounds (see Session.PlanReorient for the
// machinery and its refusal conditions: a reshape is declined while a
// recovery or another reshape is in flight, and never regenerates the
// token, so fencing stays strictly monotonic). For Open and OpenPeer —
// bare clusters with no grant-rate vantage point — Rebalance applies
// its compression half and leaves re-rooting to explicit
// Session.PlanReorient calls.
func Rebalance(interval time.Duration) TopologyPolicy {
	return TopologyPolicy{compress: true, every: interval}
}

// WithTopologyPolicy selects the adaptive-topology policy for Open,
// OpenPeer and OpenLockService. Default Static.
func WithTopologyPolicy(p TopologyPolicy) Option {
	return func(o *openOptions) { o.policy = p }
}
