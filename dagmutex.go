package dagmutex

import (
	"fmt"

	"dagmutex/internal/core"
	"dagmutex/internal/failure"
	"dagmutex/internal/lockservice"
	"dagmutex/internal/mutex"
	"dagmutex/internal/runtime"
	"dagmutex/internal/topology"
	"dagmutex/internal/transport"
)

// ID identifies a node; valid identifiers are positive.
type ID = mutex.ID

// Nil is the null node identifier (the paper's 0 value).
const Nil = mutex.Nil

// Tree is an undirected logical tree over nodes 1..N; the DAG structure is
// derived by orienting its edges toward the token holder.
type Tree = topology.Tree

// Topology constructors re-exported from the topology package.
var (
	// Star returns the thesis's best ("centralized") topology: node 1 in
	// the center, all others leaves. Worst-case cost: 3 messages.
	Star = topology.Star
	// Line returns the worst topology: a path. Worst-case cost: N.
	Line = topology.Line
	// KAry returns a complete k-ary tree, a balanced middle ground.
	KAry = topology.KAry
	// RadiatingStar returns a center with equal-length arms — the shape
	// Raymond's paper recommended and §6 shows is not optimal.
	RadiatingStar = topology.RadiatingStar
	// NewTree builds a tree from an explicit edge list.
	NewTree = topology.New
)

// Message is a protocol wire message.
type Message = mutex.Message

// Config carries cluster-wide construction parameters; see NewNode for
// direct protocol embedding.
type Config = mutex.Config

// Node is the DAG protocol state machine itself, for embedding into a
// custom transport. It is not safe for concurrent use: serialize Request,
// Release and Deliver calls (see internal/transport for two reference
// integrations).
type Node = core.Node

// Env is the surface a Node uses to send messages and report grants.
type Env = mutex.Env

// NewNode constructs a raw protocol node. Most applications should use
// Open (or OpenPeer) instead.
func NewNode(id ID, env Env, cfg Config) (*Node, error) {
	return core.New(id, env, cfg)
}

// TreeConfig builds the Config for running the DAG algorithm on tree with
// the token initially at holder — the steady state established by the
// thesis's Figure 5 INIT procedure.
func TreeConfig(tree *Tree, holder ID) (Config, error) {
	if holder == Nil || int(holder) > tree.N() {
		return Config{}, fmt.Errorf("dagmutex: holder %d not in tree of %d nodes", holder, tree.N())
	}
	return Config{IDs: tree.IDs(), Holder: holder, Parent: tree.ParentsToward(holder)}, nil
}

// Session is the blocking application API over one member node: Acquire
// waits for the critical section and returns the Grant (fencing
// generation plus grant time), TryAcquire enters only when no messages
// are needed, and Release leaves the section.
type Session = transport.Session

// Handle is Session's pre-v2 name.
//
// Deprecated: use Session.
type Handle = transport.Session

// Grant is one critical-section entry: the fencing generation the
// extended PRIVILEGE token carried (strictly monotonic across the
// cluster), the local wall-clock grant time, and — for remote client
// grants — the lease deadline the member attached.
type Grant = runtime.Grant

// NewCluster starts a live in-process cluster on tree with the token at
// holder.
//
// Deprecated: use Open(tree, holder). NewCluster is Open with no
// options.
func NewCluster(tree *Tree, holder ID) (*Cluster, error) {
	return Open(tree, holder)
}

// NewChaosCluster starts a live in-process cluster with the failure
// subsystem armed; see WithFailureDetection.
//
// Deprecated: use Open(tree, holder, WithFailureDetection(fcfg)).
func NewChaosCluster(tree *Tree, holder ID, fcfg FailureConfig) (*Cluster, error) {
	return Open(tree, holder, WithFailureDetection(fcfg))
}

// NewClusterWithINIT starts a live cluster whose nodes derive their edge
// orientation at runtime by executing the thesis's Figure 5 INIT flood.
//
// Deprecated: use Open(tree, holder, WithINIT()).
func NewClusterWithINIT(tree *Tree, holder ID) (*Cluster, error) {
	return Open(tree, holder, WithINIT())
}

// LockService is a sharded multi-resource lock manager over the DAG-token
// core: M independent token DAGs (one per shard), with resource keys
// mapped to shards by a stable hash. Acquire(ctx, resource) returns a
// LockHold carrying the resource's fencing token and lease deadline;
// Release(resource) unlocks it. Resources in different shards are held
// fully concurrently, every hold is bounded by the configured lease (the
// service force-releases expired holds), and fencing tokens are strictly
// monotonic per shard. See internal/lockservice for the design notes.
type LockService = lockservice.Service

// LockHold is one live grant of a resource: its fencing token (pass it to
// downstream stores; reject writes fenced lower) and lease deadline.
type LockHold = lockservice.Hold

// Lock-hold lifecycle errors.
var (
	// ErrNotHeld reports a Release of a resource the member does not hold.
	ErrNotHeld = lockservice.ErrNotHeld
	// ErrLeaseExpired reports a Release that arrived after the hold's
	// lease ran out and the service already reclaimed the resource.
	ErrLeaseExpired = lockservice.ErrLeaseExpired
)

// LockServiceConfig sizes a LockService: shard count, member nodes per
// shard, and the per-shard tree topology.
type LockServiceConfig = lockservice.Config

// LockTopology is LockServiceConfig.Topology: the per-shard
// adaptive-topology policy (path compression, periodic rebalancing).
// Most callers set it through WithTopologyPolicy instead.
type LockTopology = lockservice.Topology

// LockClient is the lock-service view of one member node; obtain one with
// LockService.On. Non-member processes get the same surface by dialing a
// TCP member: see DialLockService.
type LockClient = lockservice.Client

// LockStats aggregates a LockService's per-shard grant, message and
// wait-time counters.
type LockStats = lockservice.Stats

// LockTransport is the messaging substrate a LockService runs its shards
// over: in-process mailboxes by default, or real TCP between member
// processes. See LockServiceConfig.Transport.
type LockTransport = lockservice.Transport

// TCPLockTransport runs this process's member of every lock-service
// shard behind one TCP listener; OpenLockService with
// WithTransport(TCP(listen)) constructs one per member process (or use
// lockservice.NewTCPTransport for manual wiring).
type TCPLockTransport = lockservice.TCPTransport

// NewLockService starts a sharded lock service over the in-process
// substrate.
//
// Deprecated: use OpenLockService(cfg). NewLockService is
// OpenLockService with no options.
func NewLockService(cfg LockServiceConfig) (*LockService, error) {
	return OpenLockService(cfg)
}

// NewLockServiceTCP starts this process's member of a distributed lock
// service over real TCP; the returned transport exposes the bound
// address (Addr) and Connect.
//
// Deprecated: use OpenLockService(cfg, WithTransport(TCP(listen)),
// WithMember(member)) — the service itself now exposes Addr and
// Connect, and TCP members additionally serve dialed non-member clients
// (DialLockService), which this pre-v2 constructor does not.
func NewLockServiceTCP(member ID, listen string, cfg LockServiceConfig) (*LockService, *TCPLockTransport, error) {
	tr, err := lockservice.NewTCPTransport(member, listen)
	if err != nil {
		return nil, nil, err
	}
	cfg.Transport = tr
	svc, err := lockservice.New(cfg)
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	return svc, tr, nil
}

// TCPPeer is Peer's pre-v2 name.
//
// Deprecated: use Peer.
type TCPPeer = transport.TCPNode

// NewTCPPeer starts the node with the given id listening on a fresh
// loopback TCP port.
//
// Deprecated: use OpenPeer(tree, holder, id), which also accepts
// WithTransport(TCP(listen)) for a fixed address and the failure
// options.
func NewTCPPeer(id ID, tree *Tree, holder ID) (*TCPPeer, error) {
	return OpenPeer(tree, holder, id)
}

// TCPCluster wires one Peer per tree vertex over loopback inside a
// single process: the TCP analogue of Cluster, for demos and tests.
//
// Deprecated: Open with WithTransport(TCP("")) returns the same wiring
// behind the unified Cluster type. Real deployments run one Peer per
// process via OpenPeer.
type TCPCluster = transport.TCPCluster

// NewTCPCluster starts a full DAG cluster over loopback TCP with the
// token at holder.
//
// Deprecated: use Open(tree, holder, WithTransport(TCP(""))), which
// returns the unified Cluster type (member addresses via Cluster.Addr).
func NewTCPCluster(tree *Tree, holder ID) (*TCPCluster, error) {
	cfg, err := TreeConfig(tree, holder)
	if err != nil {
		return nil, err
	}
	return transport.NewTCPCluster(core.Builder, cfg, transport.DAGCodec{})
}

// FailureConfig tunes the heartbeat failure detector: how often members
// heartbeat each other and how long silence lasts before a peer is
// suspected dead. See the "Failure model" section of the package
// documentation.
type FailureConfig = failure.Config

// FaultInjector is the deterministic fault plan chaos tests drive:
// crash nodes, sever links, partition and heal. Install it with
// WithInjector (or on a LocalLockTransport).
type FaultInjector = failure.Injector

// NewFaultInjector returns an empty fault plan.
func NewFaultInjector() *FaultInjector { return failure.NewInjector() }

// ErrNodeDown marks per-node death: session operations on a crashed
// member return it (wrapped), while the surviving members recover and
// keep serving.
var ErrNodeDown = runtime.ErrNodeDown

// MemberEvent is one membership observation (peer down or up) exposed
// on Session.Membership.
type MemberEvent = runtime.MemberEvent

// LocalLockTransport runs every lock-service member in this process;
// arm its Failure field to give every shard heartbeat failure detection
// and per-shard crash failover.
type LocalLockTransport = lockservice.LocalTransport
