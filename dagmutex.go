package dagmutex

import (
	"fmt"
	"time"

	"dagmutex/internal/core"
	"dagmutex/internal/failure"
	"dagmutex/internal/lockservice"
	"dagmutex/internal/mutex"
	"dagmutex/internal/runtime"
	"dagmutex/internal/topology"
	"dagmutex/internal/transport"
)

// ID identifies a node; valid identifiers are positive.
type ID = mutex.ID

// Nil is the null node identifier (the paper's 0 value).
const Nil = mutex.Nil

// Tree is an undirected logical tree over nodes 1..N; the DAG structure is
// derived by orienting its edges toward the token holder.
type Tree = topology.Tree

// Topology constructors re-exported from the topology package.
var (
	// Star returns the thesis's best ("centralized") topology: node 1 in
	// the center, all others leaves. Worst-case cost: 3 messages.
	Star = topology.Star
	// Line returns the worst topology: a path. Worst-case cost: N.
	Line = topology.Line
	// KAry returns a complete k-ary tree, a balanced middle ground.
	KAry = topology.KAry
	// RadiatingStar returns a center with equal-length arms — the shape
	// Raymond's paper recommended and §6 shows is not optimal.
	RadiatingStar = topology.RadiatingStar
	// NewTree builds a tree from an explicit edge list.
	NewTree = topology.New
)

// Message is a protocol wire message.
type Message = mutex.Message

// Config carries cluster-wide construction parameters; see NewNode for
// direct protocol embedding.
type Config = mutex.Config

// Node is the DAG protocol state machine itself, for embedding into a
// custom transport. It is not safe for concurrent use: serialize Request,
// Release and Deliver calls (see internal/transport for two reference
// integrations).
type Node = core.Node

// Env is the surface a Node uses to send messages and report grants.
type Env = mutex.Env

// NewNode constructs a raw protocol node. Most applications should use
// NewCluster or NewTCPPeer instead.
func NewNode(id ID, env Env, cfg Config) (*Node, error) {
	return core.New(id, env, cfg)
}

// TreeConfig builds the Config for running the DAG algorithm on tree with
// the token initially at holder — the steady state established by the
// thesis's Figure 5 INIT procedure.
func TreeConfig(tree *Tree, holder ID) (Config, error) {
	if holder == Nil || int(holder) > tree.N() {
		return Config{}, fmt.Errorf("dagmutex: holder %d not in tree of %d nodes", holder, tree.N())
	}
	return Config{IDs: tree.IDs(), Holder: holder, Parent: tree.ParentsToward(holder)}, nil
}

// Cluster is an in-process live cluster: one DAG protocol node per tree
// vertex, connected by goroutines and mailboxes that preserve the paper's
// reliable per-pair FIFO network model.
type Cluster struct {
	local *transport.Local
	tree  *Tree
}

// Session is the blocking application API over one node: Acquire waits
// for the critical section and returns the Grant (fencing generation plus
// grant time), TryAcquire enters only when no messages are needed, and
// Release leaves the section.
type Session = transport.Session

// Handle is Session's deprecated former name.
type Handle = transport.Session

// Grant is one critical-section entry: the fencing generation the
// extended PRIVILEGE token carried (strictly monotonic across the
// cluster) and the local wall-clock grant time.
type Grant = runtime.Grant

// NewCluster starts a live in-process cluster on tree with the token at
// holder. Callers must Close it to stop its goroutines.
func NewCluster(tree *Tree, holder ID) (*Cluster, error) {
	cfg, err := TreeConfig(tree, holder)
	if err != nil {
		return nil, err
	}
	l, err := transport.NewLocal(core.Builder, cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{local: l, tree: tree}, nil
}

// Handle returns the acquire/release handle for node id, or nil for an
// unknown id.
func (c *Cluster) Handle(id ID) *Handle { return c.local.Handle(id) }

// Tree returns the cluster's logical topology.
func (c *Cluster) Tree() *Tree { return c.tree }

// Messages returns the number of protocol messages exchanged so far.
func (c *Cluster) Messages() int64 { return c.local.Messages() }

// Err returns the first protocol error observed, if any. A nil result
// after a workload is evidence the run respected the protocol contract.
func (c *Cluster) Err() error { return c.local.Err() }

// Close stops the cluster's goroutines and waits for them to exit.
func (c *Cluster) Close() { c.local.Close() }

// NewChaosCluster starts a live in-process cluster with the failure
// subsystem armed: every member runs a heartbeat failure detector tuned
// by fcfg, a crashed member (Kill, or Injector().Crash) is excised by
// the surviving majority — regenerating the token if it died with the
// victim — and the cluster's FaultInjector can sever links, partition
// and heal. See the "Failure model" section of the package docs.
func NewChaosCluster(tree *Tree, holder ID, fcfg FailureConfig) (*Cluster, error) {
	cfg, err := TreeConfig(tree, holder)
	if err != nil {
		return nil, err
	}
	l, err := transport.NewLocal(core.Builder, cfg, transport.WithFailureDetection(fcfg))
	if err != nil {
		return nil, err
	}
	return &Cluster{local: l, tree: tree}, nil
}

// Kill crashes member id: it falls silent mid-whatever-it-was-doing, its
// own Session fails fast with ErrNodeDown, and the survivors detect and
// recover. Only meaningful on a NewChaosCluster (without detection the
// survivors cannot notice).
func (c *Cluster) Kill(id ID) error { return c.local.Kill(id) }

// Injector returns the cluster's fault plan, for severing links and
// partitioning deterministically.
func (c *Cluster) Injector() *FaultInjector { return c.local.Injector() }

// NewClusterWithINIT starts a live cluster whose nodes derive their edge
// orientation at runtime by executing the thesis's Figure 5 INIT flood,
// instead of being configured statically. It blocks until every node has
// initialized (at most the tree's depth in message hops).
func NewClusterWithINIT(tree *Tree, holder ID) (*Cluster, error) {
	if holder == Nil || int(holder) > tree.N() {
		return nil, fmt.Errorf("dagmutex: holder %d not in tree of %d nodes", holder, tree.N())
	}
	neighbors := make(map[ID][]ID, tree.N())
	for _, id := range tree.IDs() {
		neighbors[id] = tree.Neighbors(id)
	}
	cfg := Config{IDs: tree.IDs(), Holder: holder, Neighbors: neighbors}
	l, err := transport.NewLocal(core.UninitializedBuilder, cfg)
	if err != nil {
		return nil, err
	}
	c := &Cluster{local: l, tree: tree}
	err = l.WithNode(holder, func(n mutex.Node) error {
		return n.(*core.Node).StartInit()
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := c.awaitInitialized(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// awaitInitialized polls until the INIT flood has reached every node.
func (c *Cluster) awaitInitialized() error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := true
		for _, id := range c.tree.IDs() {
			err := c.local.WithNode(id, func(n mutex.Node) error {
				if !n.(*core.Node).Initialized() {
					ready = false
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dagmutex: INIT flood did not complete within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// LockService is a sharded multi-resource lock manager over the DAG-token
// core: M independent token DAGs (one per shard), with resource keys
// mapped to shards by a stable hash. Acquire(ctx, resource) returns a
// LockHold carrying the resource's fencing token and lease deadline;
// Release(resource) unlocks it. Resources in different shards are held
// fully concurrently, every hold is bounded by the configured lease (the
// service force-releases expired holds), and fencing tokens are strictly
// monotonic per shard. See internal/lockservice for the design notes.
type LockService = lockservice.Service

// LockHold is one live grant of a resource: its fencing token (pass it to
// downstream stores; reject writes fenced lower) and lease deadline.
type LockHold = lockservice.Hold

// Lock-hold lifecycle errors.
var (
	// ErrNotHeld reports a Release of a resource the member does not hold.
	ErrNotHeld = lockservice.ErrNotHeld
	// ErrLeaseExpired reports a Release that arrived after the hold's
	// lease ran out and the service already reclaimed the resource.
	ErrLeaseExpired = lockservice.ErrLeaseExpired
)

// LockServiceConfig sizes a LockService: shard count, member nodes per
// shard, and the per-shard tree topology.
type LockServiceConfig = lockservice.Config

// LockClient is the lock-service view of one member node; obtain one with
// LockService.On.
type LockClient = lockservice.Client

// LockStats aggregates a LockService's per-shard grant, message and
// wait-time counters.
type LockStats = lockservice.Stats

// LockTransport is the messaging substrate a LockService runs its shards
// over: in-process mailboxes by default, or real TCP between member
// processes. See LockServiceConfig.Transport.
type LockTransport = lockservice.Transport

// TCPLockTransport runs this process's member of every lock-service
// shard behind one TCP listener; construct one per member process with
// NewLockServiceTCP (or lockservice.NewTCPTransport for manual wiring).
type TCPLockTransport = lockservice.TCPTransport

// NewLockService starts a sharded lock service. Callers must Close it to
// stop the shard clusters' goroutines.
func NewLockService(cfg LockServiceConfig) (*LockService, error) {
	return lockservice.New(cfg)
}

// NewLockServiceTCP starts this process's member of a distributed lock
// service over real TCP. Every participating process calls it with its
// own member id (1..cfg.Nodes) and an identical cfg. listen is the
// address to bind ("" means a fresh loopback port); the returned
// transport exposes the bound address (Addr) to exchange out of band,
// and Connect must be called with the full member address book before
// the first Acquire. Closing the service closes the transport.
func NewLockServiceTCP(member ID, listen string, cfg LockServiceConfig) (*LockService, *TCPLockTransport, error) {
	tr, err := lockservice.NewTCPTransport(member, listen)
	if err != nil {
		return nil, nil, err
	}
	cfg.Transport = tr
	svc, err := lockservice.New(cfg)
	if err != nil {
		tr.Close()
		return nil, nil, err
	}
	return svc, tr, nil
}

// TCPPeer hosts one DAG protocol node behind a real TCP listener; a set
// of TCPPeers (in one process or many) forms a cluster. See NewTCPPeer.
type TCPPeer = transport.TCPNode

// NewTCPPeer starts the node with the given id listening on a fresh
// loopback TCP port. Exchange Addr values out of band, then call Connect
// on every peer with the full address book before the first Acquire.
func NewTCPPeer(id ID, tree *Tree, holder ID) (*TCPPeer, error) {
	cfg, err := TreeConfig(tree, holder)
	if err != nil {
		return nil, err
	}
	return transport.NewTCPNode(id, core.Builder, cfg, transport.DAGCodec{})
}

// TCPCluster wires one TCPPeer per tree vertex over loopback inside a
// single process: the TCP analogue of Cluster, for demos and tests. Real
// deployments run one TCPPeer per process via NewTCPPeer instead.
type TCPCluster = transport.TCPCluster

// NewTCPCluster starts a full DAG cluster over loopback TCP with the
// token at holder. Callers must Close it.
func NewTCPCluster(tree *Tree, holder ID) (*TCPCluster, error) {
	cfg, err := TreeConfig(tree, holder)
	if err != nil {
		return nil, err
	}
	return transport.NewTCPCluster(core.Builder, cfg, transport.DAGCodec{})
}

// FailureConfig tunes the heartbeat failure detector: how often members
// heartbeat each other and how long silence lasts before a peer is
// suspected dead. See the "Failure model" section of the package
// documentation.
type FailureConfig = failure.Config

// FaultInjector is the deterministic fault plan chaos tests drive:
// crash nodes, sever links, partition and heal. Install it on a
// LocalLockTransport or a chaos cluster.
type FaultInjector = failure.Injector

// NewFaultInjector returns an empty fault plan.
func NewFaultInjector() *FaultInjector { return failure.NewInjector() }

// ErrNodeDown marks per-node death: session operations on a crashed
// member return it (wrapped), while the surviving members recover and
// keep serving.
var ErrNodeDown = runtime.ErrNodeDown

// MemberEvent is one membership observation (peer down or up) exposed
// on Session.Membership.
type MemberEvent = runtime.MemberEvent

// LocalLockTransport runs every lock-service member in this process;
// arm its Failure field to give every shard heartbeat failure detection
// and per-shard crash failover.
type LocalLockTransport = lockservice.LocalTransport
