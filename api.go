package dagmutex

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"dagmutex/internal/core"
	"dagmutex/internal/failure"
	"dagmutex/internal/lockservice"
	"dagmutex/internal/mutex"
	"dagmutex/internal/transport"
)

// defaultStartupTimeout bounds Open's startup work (the INIT flood) when
// no WithStartupContext is supplied.
const defaultStartupTimeout = 10 * time.Second

// Cluster is a live cluster: one DAG protocol node per tree vertex,
// over the in-process substrate (goroutines and mailboxes preserving
// the paper's reliable per-pair FIFO network model) or over loopback
// TCP, depending on WithTransport. Construct one with Open; Close it to
// stop its goroutines.
type Cluster struct {
	backend clusterBackend
	tree    *Tree
	reg     *Telemetry       // WithTelemetry (or the one WithDebugAddr installed)
	debug   *TelemetryServer // WithDebugAddr
}

// clusterBackend is the substrate-side surface a Cluster drives;
// transport.Local and transport.TCPCluster both satisfy it.
type clusterBackend interface {
	Session(id mutex.ID) *transport.Session
	Messages() int64
	Err() error
	Close()
	Kill(id mutex.ID) error
	Injector() *failure.Injector
	WithNode(id mutex.ID, fn func(mutex.Node) error) error
}

// Open starts a live cluster on tree with the token at holder. With no
// options it is a fail-free in-process cluster (the paper's model);
// options select the substrate (WithTransport), arm the failure
// subsystem (WithFailureDetection, WithInjector), run the Figure 5 INIT
// flood instead of static orientation (WithINIT), and attach recovery
// observers (WithObserver). Callers must Close the cluster.
func Open(tree *Tree, holder ID, opts ...Option) (*Cluster, error) {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	if holder == Nil || int(holder) > tree.N() {
		return nil, fmt.Errorf("dagmutex: holder %d not in tree of %d nodes", holder, tree.N())
	}

	cfg, err := TreeConfig(tree, holder)
	if err != nil {
		return nil, err
	}
	var initDone chan struct{}
	var builder mutex.Builder
	if o.init {
		// Runtime orientation: nodes get their neighbor lists and derive
		// NEXT from the INIT flood. The observer hook makes the completion
		// wait event-driven instead of a sleep-poll.
		neighbors := make(map[ID][]ID, tree.N())
		for _, id := range tree.IDs() {
			neighbors[id] = tree.Neighbors(id)
		}
		cfg = Config{IDs: tree.IDs(), Holder: holder, Neighbors: neighbors}
		initDone = make(chan struct{})
		var remaining atomic.Int32
		remaining.Store(int32(tree.N()))
		done := initDone
		onInit := core.WithInitObserver(func(mutex.ID) {
			if remaining.Add(-1) == 0 {
				close(done)
			}
		})
		builder = func(id mutex.ID, env mutex.Env, c mutex.Config) (mutex.Node, error) {
			return core.NewUninitialized(id, env, c, coreOptions(&o, onInit)...)
		}
	} else {
		builder = func(id mutex.ID, env mutex.Env, c mutex.Config) (mutex.Node, error) {
			return core.New(id, env, c, coreOptions(&o)...)
		}
	}

	var backend clusterBackend
	if o.transport.tcp {
		if o.clock != nil {
			return nil, fmt.Errorf("dagmutex: WithClock applies to the Local substrate; TCP sockets live on real time")
		}
		var tc *transport.TCPCluster
		tc, err = transport.NewTCPClusterWith(builder, cfg, transport.DAGCodec{}, o.fcfg, o.inj)
		if err == nil && o.queue != nil {
			tc.SetClientQueue(*o.queue)
		}
		backend = tc
	} else {
		var lopts []transport.LocalOption
		if o.inj != nil {
			lopts = append(lopts, transport.WithInjector(o.inj))
		}
		if o.fcfg != nil {
			lopts = append(lopts, transport.WithFailureDetection(*o.fcfg))
		}
		if o.clock != nil {
			lopts = append(lopts, transport.WithClock(o.clock))
		}
		backend, err = transport.NewLocal(builder, cfg, lopts...)
	}
	if err != nil {
		return nil, err
	}
	c := &Cluster{backend: backend, tree: tree, reg: o.telemetry}
	if o.debugAddr != nil && c.reg == nil {
		c.reg = NewTelemetry()
	}
	if c.reg != nil {
		c.reg.Gauge("dagmutex_messages_total", func() float64 {
			return float64(backend.Messages())
		})
	}
	if o.debugAddr != nil {
		srv, err := ServeTelemetry(*o.debugAddr, c.reg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dagmutex: debug endpoints: %w", err)
		}
		c.debug = srv
	}
	if o.init {
		if err := c.startInit(holder, initDone, o.startCtx); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// coreOptions collects the protocol-node options the open options imply.
func coreOptions(o *openOptions, extra ...core.Option) []core.Option {
	var opts []core.Option
	if o.observer != nil {
		opts = append(opts, core.WithEventObserver(o.observer))
	}
	if o.policy.compress {
		opts = append(opts, core.WithPathCompression())
	}
	if o.trace != nil {
		opts = append(opts, core.WithTraceObserver(o.trace))
	}
	return append(opts, extra...)
}

// startInit launches the Figure 5 flood from holder and waits — event
// driven, bounded by the startup context — until every node reports
// initialized.
func (c *Cluster) startInit(holder ID, initDone <-chan struct{}, ctx context.Context) error {
	err := c.backend.WithNode(holder, func(n mutex.Node) error {
		return n.(*core.Node).StartInit()
	})
	if err != nil {
		return err
	}
	return c.awaitInitialized(ctx, initDone)
}

// awaitInitialized blocks until the INIT flood has reached every node,
// the cluster fails, or ctx is done. Unlike its polling predecessor it
// sleeps on the nodes' own completion signal. Every member's failure
// signal is watched: over TCP each member host has its own error sink
// (a send failure on a non-holder must fail Open immediately, not stall
// it to the deadline), while over Local the sinks are one and the same.
func (c *Cluster) awaitInitialized(ctx context.Context, initDone <-chan struct{}) error {
	if ctx == nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), defaultStartupTimeout)
		defer cancel()
	}
	failed := make(chan error, 1)
	stop := make(chan struct{})
	defer close(stop)
	for _, id := range c.tree.IDs() {
		s := c.backend.Session(id)
		go func() {
			select {
			case <-s.Failed():
				select {
				case failed <- s.Err():
				default:
				}
			case <-stop:
			}
		}()
	}
	select {
	case <-initDone:
		return nil
	case err := <-failed:
		return fmt.Errorf("dagmutex: INIT flood failed: %w", err)
	case <-ctx.Done():
		return fmt.Errorf("dagmutex: INIT flood did not complete: %w", ctx.Err())
	}
}

// Session returns the blocking application API for member id — Acquire,
// TryAcquire, Release, fencing generations, membership events — or nil
// for an unknown id.
func (c *Cluster) Session(id ID) *Session { return c.backend.Session(id) }

// Handle returns the session for member id.
//
// Deprecated: Handle is Session's pre-v2 name; use Session.
func (c *Cluster) Handle(id ID) *Session { return c.backend.Session(id) }

// Tree returns the cluster's logical topology.
func (c *Cluster) Tree() *Tree { return c.tree }

// Messages returns the number of protocol messages exchanged so far.
func (c *Cluster) Messages() int64 { return c.backend.Messages() }

// Err returns the first protocol error observed, if any. A nil result
// after a workload is evidence the run respected the protocol contract.
func (c *Cluster) Err() error { return c.backend.Err() }

// Close stops the cluster's goroutines and waits for them to exit.
func (c *Cluster) Close() {
	if c.debug != nil {
		c.debug.Close()
	}
	c.backend.Close()
}

// Metrics returns the telemetry registry the cluster was opened with
// (WithTelemetry, or the one WithDebugAddr installed), or nil when the
// cluster runs uninstrumented.
func (c *Cluster) Metrics() *Telemetry { return c.reg }

// DebugAddr returns the bound address of the debug endpoints
// (WithDebugAddr), or "" when they are not being served.
func (c *Cluster) DebugAddr() string {
	if c.debug == nil {
		return ""
	}
	return c.debug.Addr()
}

// Kill crashes member id: it falls silent mid-whatever-it-was-doing, its
// own Session fails fast with ErrNodeDown, and — when the cluster was
// opened WithFailureDetection — the survivors detect and recover.
func (c *Cluster) Kill(id ID) error { return c.backend.Kill(id) }

// Injector returns the cluster's fault plan, for severing links and
// partitioning deterministically.
func (c *Cluster) Injector() *FaultInjector { return c.backend.Injector() }

// Addr returns member id's listen address — what non-member clients
// Dial — when the cluster runs over TCP, and "" over the in-process
// substrate (front it with a gateway instead; see Dial).
func (c *Cluster) Addr(id ID) string {
	if t, ok := c.backend.(*transport.TCPCluster); ok {
		return t.Addr(id)
	}
	return ""
}

// Peer is one DAG member hosted behind a real TCP listener — the
// per-process unit of a deployed cluster. A set of Peers (one per
// process or machine, same tree, same holder) forms a cluster once
// every listener's address is exchanged out of band and Connect is
// called with the full book. Every Peer's listener also serves dialed
// non-member clients (Dial), proxied through the member's session.
type Peer = transport.TCPNode

// OpenPeer starts member id of the tree as this process's DAG vertex,
// listening per WithTransport(TCP(listen)) (default: a fresh loopback
// port). Exchange Addr values out of band, then call Connect on every
// peer with the full address book before the first Acquire.
// WithFailureDetection and WithInjector arm this member's host;
// WithINIT is not supported for per-process peers (the flood's
// completion cannot be observed from one process).
func OpenPeer(tree *Tree, holder ID, id ID, opts ...Option) (*Peer, error) {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.init {
		return nil, fmt.Errorf("dagmutex: WithINIT requires Open (a whole-cluster view); peers must be configured statically")
	}
	if o.clock != nil {
		return nil, fmt.Errorf("dagmutex: WithClock applies to the Local substrate; TCP sockets live on real time")
	}
	cfg, err := TreeConfig(tree, holder)
	if err != nil {
		return nil, err
	}
	builder := func(nid mutex.ID, env mutex.Env, c mutex.Config) (mutex.Node, error) {
		return core.New(nid, env, c, coreOptions(&o)...)
	}
	p, err := transport.NewTCPNodeOn(id, o.transport.listen, builder, cfg, transport.DAGCodec{})
	if err != nil {
		return nil, err
	}
	if o.inj != nil {
		p.Host().SetInjector(o.inj)
	}
	if o.fcfg != nil {
		p.Host().EnableFailureDetection(*o.fcfg, tree.IDs())
	}
	if o.queue != nil {
		p.Host().SetClientQueue(*o.queue)
	}
	return p, nil
}

// OpenLockService starts a sharded multi-resource lock service. With no
// options every member of every shard runs in this process (the
// substrate tests and single-binary deployments use). With
// WithTransport(TCP(listen)) and WithMember(id), this process runs
// member id of every shard behind one listener: every participating
// process opens the same configuration with its own member id,
// exchanges Addr values out of band, and Connects the full book before
// locking. TCP members automatically serve dialed non-member clients
// (DialLockService) through their own slots. Callers must Close the
// service.
func OpenLockService(cfg LockServiceConfig, opts ...Option) (*LockService, error) {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.init {
		return nil, fmt.Errorf("dagmutex: WithINIT applies to Open, not OpenLockService")
	}
	if o.observer != nil {
		return nil, fmt.Errorf("dagmutex: WithObserver applies to Open, not OpenLockService")
	}
	if o.policy.compress || o.policy.every > 0 {
		cfg.Topology = lockservice.Topology{PathCompression: o.policy.compress, RebalanceEvery: o.policy.every}
	}
	if o.telemetry != nil {
		cfg.Telemetry = o.telemetry
	}
	if o.trace != nil {
		cfg.TraceObserver = o.trace
	}
	if o.debugAddr != nil {
		cfg.DebugAddr = *o.debugAddr
		if cfg.DebugAddr == "" {
			cfg.DebugAddr = "127.0.0.1:0"
		}
	}
	if !o.transport.tcp {
		if o.member != Nil {
			return nil, fmt.Errorf("dagmutex: WithMember needs WithTransport(TCP(...)); the in-process service hosts every member")
		}
		if o.clock != nil {
			cfg.Clock = o.clock
		}
		if cfg.Transport == nil && (o.fcfg != nil || o.inj != nil) {
			cfg.Transport = lockservice.LocalTransport{Failure: o.fcfg, Injector: o.inj, Clock: o.clock}
		}
		return lockservice.New(cfg)
	}
	if o.clock != nil {
		return nil, fmt.Errorf("dagmutex: WithClock applies to the Local substrate; TCP sockets live on real time")
	}
	member := o.member
	if member == Nil {
		return nil, fmt.Errorf("dagmutex: OpenLockService over TCP needs WithMember(id): each process runs one member")
	}
	tr, err := lockservice.NewTCPTransport(member, o.transport.listen)
	if err != nil {
		return nil, err
	}
	if o.fcfg != nil {
		nodes := cfg.Nodes
		if nodes <= 0 {
			nodes = lockservice.DefaultNodes
		}
		peers := make([]ID, nodes)
		for i := range peers {
			peers[i] = ID(i + 1)
		}
		tr.EnableFailureDetection(*o.fcfg, peers)
	}
	cfg.Transport = tr
	svc, err := lockservice.New(cfg)
	if err != nil {
		tr.Close()
		return nil, err
	}
	var q transport.ClientQueue
	if o.queue != nil {
		q = *o.queue
	}
	if err := svc.ServeClientsWith(member, q); err != nil {
		svc.Close()
		return nil, err
	}
	return svc, nil
}
