// Package dagmutex is a faithful, production-grade reproduction of
// Neilsen and Mizuno's DAG-based token algorithm for distributed mutual
// exclusion (ICDCS 1991; Neilsen's 1989 thesis), together with every
// baseline the paper compares against and the experiment harness that
// regenerates its Chapter 6 performance analysis.
//
// # The algorithm
//
// Nodes are arranged in a logical tree whose edges are oriented toward
// the current "sink" by per-node NEXT pointers. A REQUEST travels along
// NEXT pointers, reversing every edge it crosses; the requester becomes
// the new sink. Each sink remembers at most one successor in FOLLOW, so
// the global waiting queue exists only implicitly, distributed across the
// FOLLOW chain. The token (PRIVILEGE) carries no data, and each node
// keeps exactly three variables: HOLDING, NEXT and FOLLOW.
//
// On the best topology — a star — any entry to the critical section costs
// at most three messages (like a centralized lock server) with a
// synchronization delay of a single message (better than one).
//
// # Using the library
//
// For an in-process cluster connected by goroutines and channels:
//
//	tree := dagmutex.Star(8)
//	cluster, err := dagmutex.NewCluster(tree, 1) // token starts at node 1
//	if err != nil { ... }
//	defer cluster.Close()
//
//	h := cluster.Handle(3)
//	if err := h.Acquire(ctx); err != nil { ... }
//	// ... critical section ...
//	if err := h.Release(); err != nil { ... }
//
// For nodes communicating over real TCP sockets, see NewTCPPeer. For the
// deterministic simulator used by the experiments, see the Simulate
// function and the cmd/dagbench tool.
//
// # The sharded lock service
//
// The paper's algorithm arbitrates one critical section; NewLockService
// scales it to many named resources by running M independent token DAGs
// (one per shard) and hashing each resource key to a shard. Resources in
// different shards are locked fully concurrently:
//
//	svc, err := dagmutex.NewLockService(dagmutex.LockServiceConfig{Shards: 8, Nodes: 4})
//	if err != nil { ... }
//	defer svc.Close()
//
//	if err := svc.Acquire(ctx, "account:alice"); err != nil { ... }
//	// ... critical section for account:alice ...
//	if err := svc.Release("account:alice"); err != nil { ... }
//
// Distributed members lock through per-node clients (svc.On(id)), and
// svc.Stats() aggregates per-shard grant, message and wait-time counters.
// The lock experiment in cmd/dagbench (-exp lock) benchmarks throughput
// scaling with shard count; see examples/lockservice for a demo.
//
// Two usage rules follow from the paper's model. A request cannot be
// cancelled: when Acquire fails on its context, the service recovers in
// the background (the token is released when it eventually arrives), but
// that member's slot on the resource's shard stays busy until then. And a
// goroutine holding one resource must not acquire a second through the
// same member node if the two keys may share a shard — the nested Acquire
// would wait on the slot its caller already holds. Release first, or
// acquire through different member nodes.
package dagmutex
