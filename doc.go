// Package dagmutex is a faithful, production-grade reproduction of
// Neilsen and Mizuno's DAG-based token algorithm for distributed mutual
// exclusion (ICDCS 1991; Neilsen's 1989 thesis), together with every
// baseline the paper compares against and the experiment harness that
// regenerates its Chapter 6 performance analysis.
//
// # The algorithm
//
// Nodes are arranged in a logical tree whose edges are oriented toward
// the current "sink" by per-node NEXT pointers. A REQUEST travels along
// NEXT pointers, reversing every edge it crosses; the requester becomes
// the new sink. Each sink remembers at most one successor in FOLLOW, so
// the global waiting queue exists only implicitly, distributed across the
// FOLLOW chain. The thesis's token (PRIVILEGE) carries no data and each
// node keeps exactly three variables — HOLDING, NEXT and FOLLOW; this
// implementation adds one integer to each: the fencing generation the
// token transports and the node remembers (see below).
//
// On the best topology — a star — any entry to the critical section costs
// at most three messages (like a centralized lock server) with a
// synchronization delay of a single message (better than one).
//
// # Architecture
//
// The live system is layered: protocol state machines (internal/core and
// the baseline algorithms) are pure event-driven code that never blocks;
// one shared actor runtime (internal/runtime) runs each node — consuming
// its envelopes one at a time under a per-node lock, signaling grants,
// capturing the cluster's first error, and exposing the blocking Session
// API — over a small Link interface; two link layers implement that
// interface, in-process mailboxes (transport.Local, the default Open
// substrate) and framed TCP sockets with batched writes
// (transport.TCPHost, selected with WithTransport(TCP(...))); and the
// sharded lock service runs its per-shard clusters over either substrate
// through a Transport abstraction. Because the runtime is shared,
// application behavior — including fail-fast Acquire errors and the
// timed-out-Acquire recovery path via Session.Granted — is identical in
// process and over the network; pick Local for single-binary embedding,
// tests and benchmarks, and TCP when members are separate processes or
// machines.
//
// # Fencing tokens and leases
//
// The thesis's PRIVILEGE message carries no data — correct under its
// fail-free model, but a production lock service needs two more things:
// a way for downstream systems to reject a superseded holder, and a
// bound on how long one holder can wedge everyone else. The token
// therefore carries a generation number, incremented on every grant, so
// generations are strictly monotonic across the whole cluster (the
// token serializes all grants; the counter rides along for free, over
// both link layers). Session.Acquire returns it as Grant.Generation,
// and the lock service exposes it per resource as LockHold.Fence:
//
//	hold, err := svc.Acquire(ctx, "account:alice")
//	if err != nil { ... }
//	defer svc.Release("account:alice")
//	// Pass the fence to every store touched under the lock; the store
//	// keeps the highest fence it has seen and refuses anything lower,
//	// so a paused-then-resumed holder cannot clobber its successor.
//	if err := store.Write(hold.Fence, value); err != nil { ... }
//
// Every hold is also a lease: LockServiceConfig.Lease (default 30s)
// bounds it, a per-shard sweeper forcibly releases holds that outlive
// their deadline, and the late Release observes ErrLeaseExpired — the
// signal to abandon, not commit, work done since the deadline.
// ReleaseHold releases an exact hold by its fence, the precise path for
// lease-aware code; a Release of something never held returns
// ErrNotHeld. The same sweeper recovers slots abandoned by timed-out
// Acquires, so one stuck or vanished client costs its shard one lease
// interval instead of wedging it forever. See examples/leases for the
// full pattern.
//
// # Failure model
//
// The thesis assumes fail-free nodes; this reproduction does not. A
// heartbeat failure detector (internal/failure) runs over the same
// links as the protocol and turns silence — or transport evidence such
// as a TCP connection reset when a peer process dies — into per-peer
// down verdicts, delivered to the protocol as membership events rather
// than cluster-fatal errors. On a verdict the highest surviving node
// coordinates an epoch-numbered recovery: a probe round freezes the
// survivors and collects token/request state, then a reorientation
// round rebuilds the DAG, re-queues the waiters the dead node stranded,
// and — if the token died with the crashed node or in flight from it —
// regenerates it with a generation jumped 2^20 above the highest any
// survivor observed — headroom covering up to a million grants the dead
// holder issued locally without messages (a bound, not an absolute; see
// the README's failure-model section). Messages carry the epoch, and
// stale-epoch messages are annihilated on delivery, so exactly one live
// token exists per epoch and fencing generations stay strictly
// monotonic across crashes within that bound.
//
// # Pipelined handoff and the cohort regrant
//
// Two hot-path mechanisms relax how a release proceeds without touching
// what the protocol guarantees. Session.ReleaseRequest fuses a release
// with the holder's next request under one handler turn: over the DAG
// protocol the re-request rides the outgoing PRIVILEGE itself as a
// piggybacked flag, so a contended two-node rotation costs one message
// per entry instead of two. The release is pipelined — ReleaseRequest
// returns once the token handoff is locally durable (queued on the
// link), not when the successor acknowledges it; the caller's next
// grant arrives later on Session.Granted and is awaited with
// Session.Await. Session.Regrant goes further for waiters on the same
// node: the holder hands the section to the next local claimant with no
// protocol traffic at all — to its peers the node simply held the token
// a little longer — and only the fencing generation advances, so fences
// stay strictly monotonic and unique per entry. The lock service uses
// both automatically: a contended release regrants to a waiting local
// claimant up to LockServiceConfig.CohortBudget consecutive times
// (default DefaultCohortBudget; negative disables) before it must take
// the protocol path, which bounds how long remote requesters already
// queued in the DAG can be bypassed and so preserves
// starvation-freedom. Mid-recovery — frozen in a probe round, or
// holding a stale-epoch token — Regrant refuses (false, nil) and the
// release falls back to the protocol.
//
// What recovery cannot close: a falsely-suspected live holder coexists
// with the regenerated token until it is re-admitted (it rejoins the
// first time it hears newer-epoch traffic, discarding its stale token).
// During that window mutual exclusion is violated and the fencing
// generation is the defense — the stale side's fences sit a full
// regeneration jump below the new world's, so fenced stores reject its
// writes. Regeneration is quorum-gated: a minority partition never
// mints a second token. Crashed members' sessions fail fast with
// ErrNodeDown; survivors' blocked Acquires are served by the rebuilt
// chain. The chaos battery (internal/conformance) drives all of this
// identically over both link layers, `dagtrace -chaos` renders a
// recovery step by step, and `dagbench -exp chaos` measures recovery
// latency and the throughput dip under a seeded kill schedule.
//
// # Using the library
//
// The v2 API is options-first: Open is the single cluster entrypoint,
// and functional options select the substrate and the subsystems.
//
//	tree := dagmutex.Star(8)
//	cluster, err := dagmutex.Open(tree, 1) // token starts at node 1
//	if err != nil { ... }
//	defer cluster.Close()
//
//	s := cluster.Session(3) // a *Session
//	grant, err := s.Acquire(ctx)
//	if err != nil { ... }
//	// ... critical section, fenced by grant.Generation ...
//	if err := s.Release(); err != nil { ... }
//
// The same call composes every subsystem the pre-v2 constructors
// hard-wired one combination of: WithTransport(Local or TCP(listen))
// selects the substrate, WithFailureDetection arms the failure
// subsystem, WithINIT derives the orientation at runtime via the
// Figure 5 flood (event-driven, bounded by WithStartupContext),
// WithInjector installs a deterministic fault plan, and WithObserver
// taps the recovery events. One member of a deployed cluster is
// OpenPeer(tree, holder, id, ...); the deprecated constructors
// (NewCluster, NewChaosCluster, NewClusterWithINIT, NewTCPCluster,
// NewTCPPeer, NewLockService, NewLockServiceTCP) remain as thin
// wrappers and compile unchanged.
//
// For the deterministic simulator used by the experiments, see the
// Simulate function and the cmd/dagbench tool.
//
// # Clients that are not DAG members
//
// Every Session above belongs to a vertex of the token DAG. The client
// surface removes that cap: a process that is not a member can Dial a
// TCP member's address and acquire through it —
//
//	s, err := dagmutex.Dial(cluster.Addr(2))
//	if err != nil { ... }
//	defer s.Close()
//	grant, err := s.Acquire(ctx) // fence + lease deadline, over the wire
//	if err != nil { ... }
//	if err := s.Release(); err != nil { ... }
//
// and DialLockService gives the same split for the lock service. The
// member admits its clients under configurable bounds — a
// per-connection in-flight depth and an optional listener-wide
// token-bucket rate, both set with WithClientQueue(depth, rate,
// burst); past either, it sheds with ErrClientBusy instead of queueing
// without bound. It propagates context cancellation into the queue (a
// grant that races a cancel is handed straight back, so nothing
// leaks), bounds every remote hold with a lease, and releases whatever
// a disconnected client still held — so a small DAG of members serves
// a client population far larger than the tree.
//
// Admitted requests coalesce: N client waiters on one resource cost the
// member a single DAG acquire, and the arriving grant then rotates
// through the cohort locally (the Regrant path below), each waiter
// receiving its own strictly-increasing fence. Cancelling one coalesced
// waiter — or losing its connection — releases only that waiter's
// claim; the rest of the cohort keeps its place. On a hot key the
// protocol cost amortizes to well under one message per grant, which
// is what lets thousands of dialed clients share one key without
// melting the DAG. The wire protocol is documented in
// internal/transport, next to the DAG codec.
//
// For client populations in the thousands, OpenGateway (or the
// standalone cmd/daggate process) adds a gateway tier: it serves the
// same CLIENT protocol, routes each resource to a fixed member (so one
// member's cohort absorbs the whole key), multiplexes every client
// over one upstream connection per member, applies its own admission
// bounds at the edge, and fails over to the next live member if the
// routed one dies.
//
// # The sharded lock service
//
// The paper's algorithm arbitrates one critical section; OpenLockService
// scales it to many named resources by running M independent token DAGs
// (one per shard) and hashing each resource key to a shard. Resources in
// different shards are locked fully concurrently:
//
//	svc, err := dagmutex.OpenLockService(dagmutex.LockServiceConfig{Shards: 8, Nodes: 4})
//	if err != nil { ... }
//	defer svc.Close()
//
//	hold, err := svc.Acquire(ctx, "account:alice")
//	if err != nil { ... }
//	// ... critical section for account:alice, fenced by hold.Fence ...
//	if err := svc.Release("account:alice"); err != nil { ... }
//
// Members lock through per-node clients (svc.On(id)), and svc.Stats()
// aggregates per-shard grant, message and wait-time counters. The same
// shard code runs distributed across real processes over TCP: each
// member process calls OpenLockService with WithTransport(TCP(listen))
// and its own WithMember id, exchanges svc.Addr() values out of band,
// and svc.Connect()s the full book — see examples/lockservicetcp. TCP
// members additionally serve dialed non-member clients
// (DialLockService) on the same listener. The lock experiment in
// cmd/dagbench (-exp lock) benchmarks throughput scaling with shard
// count over both substrates, and -exp clients measures the
// member/client split; see examples/lockservice and examples/clients.
//
// Two usage rules follow from the paper's model. A request cannot be
// cancelled: when Acquire fails on its context, the service recovers in
// the background (the token is released when it eventually arrives), but
// that member's slot on the resource's shard stays busy until then. And a
// goroutine holding one resource should not acquire a second through the
// same member node if the two keys may share a shard — the nested Acquire
// waits on the slot its caller already holds. With leases enabled (the
// default) this self-deadlock is bounded, not permanent: the outer
// hold's lease expires, the service reclaims the slot, and the nested
// Acquire proceeds — but the outer hold is then invalid (its Release
// reports ErrLeaseExpired), so it is still a bug, just a recoverable
// one. Release first, or acquire through different member nodes.
//
// # Adaptive topology
//
// The thesis's performance analysis makes the initial tree shape the
// dominant cost term: a chain pays O(diameter) messages per grant, the
// star pays about two. WithTopologyPolicy lets the DAG adapt that
// shape online instead of trusting the one chosen at provisioning
// time. Static (the default) is the paper's algorithm verbatim.
// PathCompress() applies the Naimi–Trehel reversal: every node a
// REQUEST traverses points its NEXT pointer directly at the request's
// origin rather than at the neighbor that forwarded it, flattening the
// tree toward every requester as a side effect of ordinary request
// traffic — no extra messages, no new frame types. Rebalance(interval)
// adds periodic re-rooting on top of compression, for OpenLockService:
// each shard tracks per-node grant rates, and every interval the
// shard's current token possessor plans a REORIENT epoch toward the
// hottest requester since the last tick, reusing the crash recovery's
// freeze/rebuild rounds to re-root the DAG as a two-level radial
// around the hot node.
//
//	svc, err := dagmutex.OpenLockService(
//	    dagmutex.LockServiceConfig{Shards: 8, Nodes: 32},
//	    dagmutex.WithTopologyPolicy(dagmutex.Rebalance(5*time.Second)))
//
// A planned reorient never regenerates the token and never advances
// the fencing generation — only possession moves the shape, so fences
// stay strictly monotonic across reshapes (the conformance battery
// asserts this over both link layers). Like Regrant, a plan is refused
// (false, nil) rather than errored while a recovery or an earlier
// reshape is still in flight, when the cluster lacks a quorum, or from
// a node that does not currently possess the token; planning toward a
// non-member or a suspected-dead node is ErrBadConfig. For Open and
// OpenPeer (a single DAG, no shard heat tracking) Rebalance applies
// its compression half and re-rooting is explicit via
// Session.PlanReorient. The dagbench topology experiment (-exp
// topology) measures the effect: under Zipf-skewed requesters a
// 32-node chain drops from ~10.5 messages per grant to within 1.2× of
// the optimal star.
//
// # Observability
//
// Three options light up the stack without touching the hot path's
// allocation budget. WithTelemetry(NewTelemetry()) installs a metrics
// registry — atomic counters, pull gauges and fixed-bucket latency
// histograms, all allocation-free after registration — that the core,
// runtime, lock service and gateway tiers register into (per-shard
// grant/release/expiry counters, queue-depth gauges, wait and hold
// latency quantiles, gateway admission counters). WithTraceObserver
// taps the causal event stream: every grant, release, regrant, expiry
// and recovery is delivered as a TraceEvent carrying the (Origin,
// Fence) pair already on the wire, so the fencing token doubles as a
// cluster-wide causal trace ID — within one shard, TraceGrant fences
// are strictly increasing in stream order. The observer runs inside
// protocol handlers and must not block, allocate or call back into
// the library. WithDebugAddr serves the registry as Prometheus text
// on /metrics plus the standard /debug/pprof profiles for the
// lifetime of the opened object:
//
//	svc, err := dagmutex.OpenLockService(
//	    dagmutex.LockServiceConfig{Shards: 8, Nodes: 4},
//	    dagmutex.WithTelemetry(dagmutex.NewTelemetry()),
//	    dagmutex.WithDebugAddr("127.0.0.1:0"),
//	    dagmutex.WithTraceObserver(func(e dagmutex.TraceEvent) { /* count, sample */ }))
//
// Read the registry back with Cluster.Metrics, LockService.Telemetry
// or Gateway.Metrics, the bound endpoint address with the matching
// DebugAddr method, or serve a registry by hand with ServeTelemetry.
// All three options apply uniformly to Open, OpenLockService and
// OpenGateway (cmd/daggate exposes the same endpoints with -debug).
// The instrumented steady state stays at zero allocations per cycle
// (a committed budget test enforces it) and dagbench's telemetry
// experiment (-telemetry) measures the end-to-end tax, asserting the
// instrumented sweep holds within 5% of the bare one. See
// examples/telemetry for the full pattern, scrape included.
//
// # Virtual time
//
// Every timer in the stack reads time through a Clock — lease
// deadlines and the expiry sweeper, heartbeat failure detection,
// rebalance ticks, proxy expiry, the local substrate's injected delay
// lines. The default is the system clock. WithClock(NewVirtualClock())
// swaps in a deterministic one: nothing expires or ticks until the
// test calls VirtualClock.Advance, which fires the timers due, in
// order, on the advancing goroutine — so the test asserts immediately
// after Advance returns, with no sleeps and no polling:
//
//	v := dagmutex.NewVirtualClock()
//	svc, err := dagmutex.OpenLockService(
//	    dagmutex.LockServiceConfig{Shards: 1, Nodes: 2,
//	        Lease: 50 * time.Millisecond, SweepInterval: 5 * time.Millisecond},
//	    dagmutex.WithClock(v))
//	svc.Acquire(ctx, "r")
//	v.Advance(200 * time.Millisecond)     // the lease expires here
//	err = svc.Release("r")                // ErrLeaseExpired, deterministically
//
// WithClock applies to the Local substrate only; TCP sockets live on
// real time, so combining it with WithTransport(TCP(...)) is an
// error. For whole-cluster simulation at scale — thousands of nodes,
// seeded fault schedules against the recovery protocol, simulated
// hours in wall-clock seconds — the internal/simharness package and
// `dagsim -virtual` run the same core state machines entirely on
// virtual time; `dagsim -virtual -capacity` publishes the
// capacity-planning curves as BENCH_sim.json.
package dagmutex
