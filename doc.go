// Package dagmutex is a faithful, production-grade reproduction of
// Neilsen and Mizuno's DAG-based token algorithm for distributed mutual
// exclusion (ICDCS 1991; Neilsen's 1989 thesis), together with every
// baseline the paper compares against and the experiment harness that
// regenerates its Chapter 6 performance analysis.
//
// # The algorithm
//
// Nodes are arranged in a logical tree whose edges are oriented toward
// the current "sink" by per-node NEXT pointers. A REQUEST travels along
// NEXT pointers, reversing every edge it crosses; the requester becomes
// the new sink. Each sink remembers at most one successor in FOLLOW, so
// the global waiting queue exists only implicitly, distributed across the
// FOLLOW chain. The token (PRIVILEGE) carries no data, and each node
// keeps exactly three variables: HOLDING, NEXT and FOLLOW.
//
// On the best topology — a star — any entry to the critical section costs
// at most three messages (like a centralized lock server) with a
// synchronization delay of a single message (better than one).
//
// # Using the library
//
// For an in-process cluster connected by goroutines and channels:
//
//	tree := dagmutex.Star(8)
//	cluster, err := dagmutex.NewCluster(tree, 1) // token starts at node 1
//	if err != nil { ... }
//	defer cluster.Close()
//
//	h := cluster.Handle(3)
//	if err := h.Acquire(ctx); err != nil { ... }
//	// ... critical section ...
//	if err := h.Release(); err != nil { ... }
//
// For nodes communicating over real TCP sockets, see NewTCPPeer. For the
// deterministic simulator used by the experiments, see the Simulate
// function and the cmd/dagbench tool.
package dagmutex
