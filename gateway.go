package dagmutex

import (
	"dagmutex/internal/gateway"
	"dagmutex/internal/transport"
)

// This file is the facade over the gateway tier: a standalone
// client-protocol listener that multiplexes a large dialed-client
// population over a handful of member connections, with admission
// control at its edge. See the "Gateway tier" section of the package
// documentation and cmd/daggate for the standalone binary.

// ClientStats snapshots the client-tier admission counters of a
// listener serving dialed clients — a Gateway's edge or a TCP cluster's
// member listeners.
type ClientStats = transport.ClientStats

// Gateway is a running gateway-tier process: clients Dial it exactly as
// they would a member (same frames, same sentinels), and it fans their
// requests in over one upstream connection per member, where each
// member's proxy coalesces them further into single DAG acquires.
// Construct with OpenGateway; Close it to hang up every client and
// upstream connection.
type Gateway struct {
	g     *gateway.Gateway
	reg   *Telemetry       // WithTelemetry (or the one WithDebugAddr installed)
	debug *TelemetryServer // WithDebugAddr
}

// OpenGateway starts a gateway listening on listen ("" for a fresh
// loopback port), multiplexing over the given member addresses
// (Cluster.Addr, Peer.Addr or LockService.Addr values). Member
// connections are dialed lazily and redialed after failures, so the
// gateway may be started before its members. WithClientQueue sets the
// admission bounds applied at the gateway's edge, WithTelemetry
// registers the client-tier admission counters, and WithDebugAddr
// serves the /metrics and /debug/pprof endpoints; other options do not
// apply. A named resource always routes to the same member; when that
// member is unreachable the gateway fails over to the next and routes
// the eventual release back to whichever member granted.
func OpenGateway(listen string, members []string, opts ...Option) (*Gateway, error) {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	var q transport.ClientQueue
	if o.queue != nil {
		q = *o.queue
	}
	g, err := gateway.New(gateway.Config{Listen: listen, Members: members, Queue: q})
	if err != nil {
		return nil, err
	}
	fg := &Gateway{g: g, reg: o.telemetry}
	if o.debugAddr != nil && fg.reg == nil {
		fg.reg = NewTelemetry()
	}
	if fg.reg != nil {
		g.Register(fg.reg)
	}
	if o.debugAddr != nil {
		srv, err := ServeTelemetry(*o.debugAddr, fg.reg)
		if err != nil {
			_ = g.Close()
			return nil, err
		}
		fg.debug = srv
	}
	return fg, nil
}

// Addr returns the gateway's client-facing listen address, for Dial and
// DialLockService.
func (g *Gateway) Addr() string { return g.g.Addr() }

// Stats snapshots the gateway's admission counters: open connections,
// in-flight requests, admitted and shed totals.
func (g *Gateway) Stats() ClientStats { return g.g.Stats() }

// Metrics returns the telemetry registry the gateway was opened with
// (WithTelemetry, or the one WithDebugAddr installed), or nil when the
// gateway runs uninstrumented.
func (g *Gateway) Metrics() *Telemetry { return g.reg }

// DebugAddr returns the bound address of the debug endpoints
// (WithDebugAddr), or "" when they are not being served.
func (g *Gateway) DebugAddr() string {
	if g.debug == nil {
		return ""
	}
	return g.debug.Addr()
}

// Close stops the listener, severs every client connection (releasing
// the holds they owned), then hangs up the member connections.
func (g *Gateway) Close() error {
	if g.debug != nil {
		g.debug.Close()
	}
	return g.g.Close()
}
